package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/parallel"
	"repro/internal/xrand"
)

// Test configuration: the tasks app at cpus=2 scale=0.05 runs ~543k
// virtual cycles in a few ms of wall time; quantum 50k gives each
// session ~10 boundaries, so steps, evictions and resumes all have
// room to interleave while the whole suite stays fast.

func testConfig(dir string) Config {
	return Config{
		DataDir:        dir,
		MaxLive:        4,
		Workers:        2,
		HeartbeatEvery: 10 * time.Millisecond,
		StallTimeout:   10 * time.Second,
		DefaultQuantum: 50_000,
		EnableChaos:    true,
	}
}

func newTestServer(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	cfg := testConfig(t.TempDir())
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		s.Shutdown(ctx) // double shutdown after an explicit one is a reported, harmless error
	})
	return s
}

func testSessionConfig(seed uint64) SessionConfig {
	return SessionConfig{App: "tasks", Policy: "LFF", CPUs: 2, Scale: 0.05,
		Seed: seed, Quantum: 50_000}
}

func mustCreate(t *testing.T, s *Server, tenant string, cfg SessionConfig) Info {
	t.Helper()
	info, err := s.CreateSession(context.Background(), tenant, cfg)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	return info
}

func mustFinish(t *testing.T, s *Server, id string) StepResult {
	t.Helper()
	res, err := s.Step(context.Background(), id, 0)
	if err != nil {
		t.Fatalf("Step(%s, 0): %v", id, err)
	}
	if res.State != StateDone || res.Result == nil {
		t.Fatalf("session %s finished in state %q (failure: %s)", id, res.State, res.Failure)
	}
	return res
}

// TestStepToCompletion pins the basic lifecycle: one unlimited step
// runs the workload to done with a result and a plausible boundary
// count.
func TestStepToCompletion(t *testing.T) {
	s := newTestServer(t, nil)
	info := mustCreate(t, s, "", testSessionConfig(101))
	res := mustFinish(t, s, info.ID)
	if len(res.Result.Fingerprint) != 16 {
		t.Errorf("fingerprint %q, want 16 hex chars", res.Result.Fingerprint)
	}
	if res.Boundaries < 5 {
		t.Errorf("crossed %d boundaries, want >= 5 (quantum too coarse?)", res.Boundaries)
	}
	if res.Result.Cycles == 0 || res.Result.Instrs == 0 {
		t.Errorf("empty result: %+v", res.Result)
	}
	// Stepping a done session reports the result again, idempotently.
	again, err := s.Step(context.Background(), info.ID, 1)
	if err != nil || again.State != StateDone || again.Result.Fingerprint != res.Result.Fingerprint {
		t.Errorf("step-after-done = %+v, %v; want same done result", again, err)
	}
}

// TestSessionByteIdentity is the service-level determinism gate: a
// session stepped one boundary at a time and evicted to disk between
// every step must finish with the SAME fingerprint as an uninterrupted
// twin of the same config — byte identity across any number of
// evict/resume cycles.
func TestSessionByteIdentity(t *testing.T) {
	s := newTestServer(t, nil)
	ctx := context.Background()

	control := mustCreate(t, s, "", testSessionConfig(202))
	want := mustFinish(t, s, control.ID).Result.Fingerprint

	chopped := mustCreate(t, s, "", testSessionConfig(202))
	var got string
	for i := 0; ; i++ {
		if i > 100 {
			t.Fatal("session did not complete in 100 single-boundary steps")
		}
		res, err := s.Step(ctx, chopped.ID, 1)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if res.State == StateDone {
			got = res.Result.Fingerprint
			break
		}
		if _, err := s.Evict(ctx, chopped.ID); err != nil {
			t.Fatalf("evict after step %d: %v", i, err)
		}
	}
	if got != want {
		t.Errorf("chopped fingerprint %s != control %s", got, want)
	}
	info, _ := s.Get(chopped.ID)
	if info.Evictions == 0 || info.Resumes == 0 {
		t.Errorf("expected a scarred history, got evictions=%d resumes=%d", info.Evictions, info.Resumes)
	}
}

// TestEvictWhileStepping races explicit evictions against an unlimited
// in-flight step: the step must absorb every eviction (resume and
// continue transparently) and still produce the control fingerprint.
func TestEvictWhileStepping(t *testing.T) {
	s := newTestServer(t, nil)
	ctx := context.Background()

	control := mustCreate(t, s, "", testSessionConfig(303))
	want := mustFinish(t, s, control.ID).Result.Fingerprint

	victim := mustCreate(t, s, "", testSessionConfig(303))
	done := make(chan StepResult, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := s.Step(ctx, victim.ID, 0)
		if err != nil {
			errc <- err
			return
		}
		done <- res
	}()
	// Hammer evictions while the step runs; each one forces an unwind
	// at a boundary and a deterministic fast-forward resume.
	for i := 0; i < 3; i++ {
		time.Sleep(2 * time.Millisecond)
		if _, err := s.Evict(ctx, victim.ID); err != nil {
			t.Fatalf("evict %d: %v", i, err)
		}
	}
	select {
	case err := <-errc:
		t.Fatalf("step: %v", err)
	case res := <-done:
		if res.State != StateDone || res.Result.Fingerprint != want {
			t.Errorf("stepped-under-eviction result %+v, want done with fingerprint %s", res, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("step did not complete")
	}
}

// TestPanicIsolation pins crash isolation: an injected engine panic
// fails exactly that session — with the stack in its diagnostic —
// while the server keeps serving and other sessions complete.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, nil)

	poison := testSessionConfig(404)
	poison.PanicAtBoundary = 2
	bad := mustCreate(t, s, "", poison)
	res, err := s.Step(context.Background(), bad.ID, 0)
	if err != nil {
		t.Fatalf("step poisoned: %v", err)
	}
	if res.State != StateFailed {
		t.Fatalf("poisoned session state %q, want failed", res.State)
	}
	if !strings.Contains(res.Failure, "chaos: injected panic at boundary 2") {
		t.Errorf("failure %q does not name the panic", firstLine(res.Failure))
	}
	if !strings.Contains(res.Failure, "goroutine") {
		t.Errorf("failure does not carry a stack trace")
	}
	// Steps on a failed session keep reporting the failure, and never
	// resurrect an engine.
	res2, err := s.Step(context.Background(), bad.ID, 1)
	if err != nil || res2.State != StateFailed {
		t.Errorf("step-after-failure = %+v, %v; want failed", res2, err)
	}
	// The blast radius is one session.
	good := mustCreate(t, s, "", testSessionConfig(405))
	mustFinish(t, s, good.ID)
	if s.met.panicsRecovered.Value() == 0 {
		t.Errorf("panics_recovered_total = 0, want >= 1")
	}
}

// TestChaosWithoutOptIn pins that fault injection is admission-gated.
func TestChaosWithoutOptIn(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.EnableChaos = false })
	poison := testSessionConfig(1)
	poison.PanicAtBoundary = 1
	_, err := s.CreateSession(context.Background(), "", poison)
	var val *ValidationError
	if !errors.As(err, &val) {
		t.Fatalf("create with chaos disabled = %v, want ValidationError", err)
	}
}

// TestAdmission pins the control plane: session capacity, tenant
// quotas, LRU eviction of parked sessions, and 429-style overload when
// every live slot is genuinely busy.
func TestAdmission(t *testing.T) {
	t.Run("capacity", func(t *testing.T) {
		s := newTestServer(t, func(c *Config) { c.MaxSessions = 2 })
		mustCreate(t, s, "", testSessionConfig(1))
		mustCreate(t, s, "", testSessionConfig(2))
		_, err := s.CreateSession(context.Background(), "", testSessionConfig(3))
		var over *OverloadError
		if !errors.As(err, &over) || over.Quota {
			t.Fatalf("create past capacity = %v, want non-quota OverloadError", err)
		}
		if over.RetryAfter <= 0 {
			t.Errorf("RetryAfter = %v, want > 0", over.RetryAfter)
		}
	})
	t.Run("tenant quota", func(t *testing.T) {
		s := newTestServer(t, func(c *Config) { c.TenantQuota = 1 })
		mustCreate(t, s, "alice", testSessionConfig(1))
		_, err := s.CreateSession(context.Background(), "alice", testSessionConfig(2))
		var over *OverloadError
		if !errors.As(err, &over) || !over.Quota {
			t.Fatalf("create past tenant quota = %v, want quota OverloadError", err)
		}
		// Quotas are per tenant: bob is unaffected.
		mustCreate(t, s, "bob", testSessionConfig(3))
	})
	t.Run("lru eviction and busy overload", func(t *testing.T) {
		s := newTestServer(t, func(c *Config) { c.MaxLive = 1 })
		ctx := context.Background()
		a := mustCreate(t, s, "", testSessionConfig(1))
		b := mustCreate(t, s, "", testSessionConfig(2))
		if _, err := s.Step(ctx, a.ID, 1); err != nil {
			t.Fatalf("step a: %v", err)
		}
		// a's engine is parked at its gate. Pretend it is mid-step: a
		// busy engine must never be chosen as an eviction victim, so b
		// gets backpressure instead.
		sessA, _ := s.lookup(a.ID)
		sessA.mu.Lock()
		leA := sessA.live
		sessA.mu.Unlock()
		if leA == nil {
			t.Fatal("session a has no resident engine after a step")
		}
		leA.phase.Store(engineBusy)
		_, err := s.Step(ctx, b.ID, 1)
		var over *OverloadError
		if !errors.As(err, &over) {
			t.Fatalf("step with all slots busy = %v, want OverloadError", err)
		}
		// Parked again, a is fair game: b's step evicts it (LRU) and
		// proceeds.
		leA.phase.Store(engineParked)
		if _, err := s.Step(ctx, b.ID, 1); err != nil {
			t.Fatalf("step b after unbusy: %v", err)
		}
		if info, _ := s.Get(a.ID); info.State != StateIdle || info.Evictions != 1 {
			t.Errorf("victim a = state %q evictions %d, want idle/1", info.State, info.Evictions)
		}
		// And the evicted session still finishes correctly.
		mustFinish(t, s, a.ID)
	})
}

// TestEvictedGrantsKeepBudget pins the eviction/grant race: when an
// engine unwinds with grants still queued (or accepted but never
// started), each one must be answered with ITS OWN unexecuted budget.
// Regression: the drain loop used to answer queued grants with the
// in-flight grant's residue — 0 — which Step then retried as "run to
// completion", silently unbounding a 1-quantum request.
func TestEvictedGrantsKeepBudget(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1 })
	ctx := context.Background()
	info := mustCreate(t, s, "", testSessionConfig(42))
	if _, err := s.Step(ctx, info.ID, 1); err != nil {
		t.Fatalf("step: %v", err)
	}
	sess, _ := s.lookup(info.ID)
	sess.mu.Lock()
	le := sess.live
	sess.mu.Unlock()
	if le == nil {
		t.Fatal("no resident engine after a step")
	}
	// Occupy the only compute token so an accepted grant blocks before
	// executing, then queue two grants: the first becomes current, the
	// second sits untouched in the channel.
	s.tokens <- struct{}{}
	g1 := &grant{quanta: 2, outcome: make(chan stepOutcome, 1)}
	g2 := &grant{quanta: 3, outcome: make(chan stepOutcome, 1)}
	le.grants <- g1
	le.grants <- g2
	deadline := time.Now().Add(10 * time.Second)
	for le.phase.Load() != engineBusy {
		if time.Now().After(deadline) {
			t.Fatal("engine never accepted the first grant")
		}
		time.Sleep(time.Millisecond)
	}
	le.requestStop()
	<-le.done
	<-s.tokens
	for i, want := range map[*grant]uint64{g1: 2, g2: 3} {
		out := <-i.outcome
		if !out.evicted || out.state != StateIdle {
			t.Fatalf("grant outcome = %+v, want evicted idle", out)
		}
		if out.remaining != want {
			t.Errorf("grant with budget %d answered with remaining %d; retrying that loses the bound", want, out.remaining)
		}
	}
	// The session is intact and still finishes.
	mustFinish(t, s, info.ID)
}

// TestDeletePersistRace pins the delete tombstone against concurrent
// persists: no interleaving of Delete with a slow manifest/snapshot
// write may leave the session's files on disk (they would resurrect as
// a resident session on restart). Run under -race.
func TestDeletePersistRace(t *testing.T) {
	s := newTestServer(t, nil)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		info := mustCreate(t, s, "", testSessionConfig(1000+uint64(i)))
		sess, err := s.lookup(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for j := 0; j < 5; j++ {
				sess.mu.Lock()
				sess.gen++ // keep the manifest dirty so every persist writes
				sess.mu.Unlock()
				_ = s.persistManifest(sess)
			}
		}()
		if err := s.Delete(ctx, info.ID); err != nil {
			t.Fatalf("delete: %v", err)
		}
		<-done
		if _, err := os.Stat(s.store.manifestPath(info.ID)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("iteration %d: manifest resurrected after delete (stat err %v)", i, err)
		}
		if _, err := os.Stat(s.store.snapPath(info.ID)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("iteration %d: snapshot resurrected after delete (stat err %v)", i, err)
		}
	}
}

// TestCorruptManifestQuarantined pins boot resilience: one unparseable
// manifest in the data directory must not fail New — it is renamed to
// .corrupt and every other session restores normally.
func TestCorruptManifestQuarantined(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(testConfig(dir))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	good := mustCreate(t, s1, "", testSessionConfig(77))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	bad := filepath.Join(dir, "s-999999.json")
	if err := os.WriteFile(bad, []byte("{this is not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := New(testConfig(dir))
	if err != nil {
		t.Fatalf("New with corrupt manifest in dir: %v", err)
	}
	t.Cleanup(func() {
		c, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		s2.Shutdown(c)
	})
	if got := len(s2.List()); got != 1 {
		t.Errorf("restored %d sessions, want 1 (the healthy one)", got)
	}
	if _, err := s2.Get(good.ID); err != nil {
		t.Errorf("healthy session lost: %v", err)
	}
	if _, err := os.Stat(bad); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt manifest still in scan namespace (stat err %v)", err)
	}
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		t.Errorf("quarantined copy missing: %v", err)
	}
	if s2.met.quarantined.Value() != 1 {
		t.Errorf("manifests_quarantined_total = %v, want 1", s2.met.quarantined.Value())
	}
}

// TestStepDeadline pins deadline behavior: a step that cannot get
// compute before its context expires returns a DeadlineError (504),
// while the session itself stays healthy and completes later.
func TestStepDeadline(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1 })
	info := mustCreate(t, s, "", testSessionConfig(7))
	// Occupy the only compute token so the engine cannot start.
	s.tokens <- struct{}{}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := s.Step(ctx, info.ID, 1)
	var dead *DeadlineError
	if !errors.As(err, &dead) {
		t.Fatalf("starved step = %v, want DeadlineError", err)
	}
	<-s.tokens // release compute
	// Server-side progress was only deferred, not lost.
	mustFinish(t, s, info.ID)
}

// TestDelete pins removal: files gone, 404 afterwards, a live engine
// stopped first.
func TestDelete(t *testing.T) {
	s := newTestServer(t, nil)
	ctx := context.Background()
	info := mustCreate(t, s, "", testSessionConfig(5))
	if _, err := s.Step(ctx, info.ID, 1); err != nil {
		t.Fatalf("step: %v", err)
	}
	if err := s.Delete(ctx, info.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := s.Get(info.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after delete = %v, want ErrNotFound", err)
	}
	if _, err := s.Step(ctx, info.ID, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("step after delete = %v, want ErrNotFound", err)
	}
	if err := s.Delete(ctx, info.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v, want ErrNotFound", err)
	}
}

// TestRestartRestores is the graceful-restart gate: shut a server
// down mid-flight and restore every session — idle ones with their
// disk snapshots, done ones with their results — in a fresh server
// over the same directory, finishing to control-identical
// fingerprints.
func TestRestartRestores(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1, err := New(testConfig(dir))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var partial [3]Info
	for i := range partial {
		partial[i] = mustCreate(t, s1, "t1", testSessionConfig(600+uint64(i)))
		if _, err := s1.Step(ctx, partial[i].ID, 2); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	finished := mustCreate(t, s1, "t2", testSessionConfig(700))
	doneRes := mustFinish(t, s1, finished.ID)
	shutCtx, cancel := context.WithTimeout(ctx, 20*time.Second)
	defer cancel()
	if err := s1.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s2, err := New(testConfig(dir))
	if err != nil {
		t.Fatalf("New over restored dir: %v", err)
	}
	t.Cleanup(func() {
		c, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		s2.Shutdown(c)
	})
	if got := len(s2.List()); got != 4 {
		t.Fatalf("restored %d sessions, want 4", got)
	}
	// The finished session restored with its result intact.
	if info, err := s2.Get(finished.ID); err != nil || info.State != StateDone ||
		info.Result == nil || info.Result.Fingerprint != doneRes.Result.Fingerprint {
		t.Errorf("restored done session = %+v, %v; want done with fingerprint %s",
			info, err, doneRes.Result.Fingerprint)
	}
	// Partially-stepped sessions restored idle with progress, and
	// finish byte-identically to fresh uninterrupted twins.
	for i := range partial {
		info, err := s2.Get(partial[i].ID)
		if err != nil || info.State != StateIdle || info.Boundaries != 2 {
			t.Fatalf("restored session %s = %+v, %v; want idle with 2 boundaries", partial[i].ID, info, err)
		}
		got := mustFinish(t, s2, partial[i].ID).Result.Fingerprint
		twin := mustCreate(t, s2, "", testSessionConfig(600+uint64(i)))
		want := mustFinish(t, s2, twin.ID).Result.Fingerprint
		if got != want {
			t.Errorf("restored session %d fingerprint %s != twin %s", i, got, want)
		}
	}
	// New sessions continue the ID sequence without collisions.
	fresh := mustCreate(t, s2, "", testSessionConfig(999))
	if _, err := s2.Get(fresh.ID); err != nil {
		t.Errorf("fresh session after restore: %v", err)
	}
}

// TestDrainingRejectsWork pins overload semantics during shutdown: a
// draining server 503s new work instead of hanging it.
func TestDrainingRejectsWork(t *testing.T) {
	s := newTestServer(t, nil)
	info := mustCreate(t, s, "", testSessionConfig(8))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := s.CreateSession(ctx, "", testSessionConfig(9)); !errors.Is(err, ErrDraining) {
		t.Errorf("create while draining = %v, want ErrDraining", err)
	}
	if _, err := s.Step(ctx, info.ID, 1); !errors.Is(err, ErrDraining) {
		t.Errorf("step while draining = %v, want ErrDraining", err)
	}
	if !s.Draining() {
		t.Errorf("Draining() = false after Shutdown")
	}
}

// TestEvents pins the observable lifecycle: creation, boundaries, and
// completion all land in the session's event log with monotonic
// sequence numbers.
func TestEvents(t *testing.T) {
	s := newTestServer(t, nil)
	info := mustCreate(t, s, "", testSessionConfig(10))
	mustFinish(t, s, info.ID)
	evs, _, err := s.Events(info.ID, 0)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	kinds := make(map[string]int)
	var lastSeq uint64
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Fatalf("event seq not monotonic: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		kinds[ev.Kind]++
	}
	for _, want := range []string{"created", "live", "boundary", "done"} {
		if kinds[want] == 0 {
			t.Errorf("no %q event in %v", want, kinds)
		}
	}
}

// TestConcurrentLifecycle exercises the whole state machine from many
// goroutines at once — concurrent steps, evictions, reads and deletes
// across sessions sharing a small live-slot pool — and then checks
// byte identity survived the melee. Run under -race.
func TestConcurrentLifecycle(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxLive = 2; c.Workers = 2 })
	ctx := context.Background()
	const sessions = 6

	infos := make([]Info, sessions)
	controls := make([]string, sessions)
	for i := range infos {
		infos[i] = mustCreate(t, s, fmt.Sprintf("tenant-%d", i%2), testSessionConfig(800+uint64(i)))
		c := mustCreate(t, s, "", testSessionConfig(800+uint64(i)))
		controls[i] = mustFinish(t, s, c.ID).Result.Fingerprint
	}

	// 3 actors per session: a stepper, an evictor, and a reader, all
	// racing. Deterministically seeded randomness keeps reruns honest.
	err := parallel.ForEach(3*sessions, 3*sessions, func(i int) error {
		sess := infos[i/3]
		rng := xrand.New(uint64(9000 + i))
		switch i % 3 {
		case 0: // stepper: advance in small random bites until done
			for {
				res, err := s.Step(ctx, sess.ID, 1+rng.Uint64n(3))
				if err != nil {
					var over *OverloadError
					if errors.As(err, &over) {
						time.Sleep(time.Millisecond)
						continue
					}
					return fmt.Errorf("step %s: %w", sess.ID, err)
				}
				if res.State == StateDone {
					if res.Result.Fingerprint != controls[i/3] {
						return fmt.Errorf("session %s fingerprint %s != control %s",
							sess.ID, res.Result.Fingerprint, controls[i/3])
					}
					return nil
				}
				if res.State == StateFailed {
					return fmt.Errorf("session %s failed: %s", sess.ID, res.Failure)
				}
			}
		case 1: // evictor: shove it to disk a few times
			for j := 0; j < 5; j++ {
				if _, err := s.Evict(ctx, sess.ID); err != nil && !errors.Is(err, ErrNotFound) {
					return fmt.Errorf("evict %s: %w", sess.ID, err)
				}
				time.Sleep(time.Duration(rng.Uint64n(3)) * time.Millisecond)
			}
			return nil
		default: // reader: info and events must always be coherent
			for j := 0; j < 20; j++ {
				info, err := s.Get(sess.ID)
				if err != nil {
					return fmt.Errorf("get %s: %w", sess.ID, err)
				}
				switch info.State {
				case StateIdle, StateLive, StateDone:
				default:
					return fmt.Errorf("session %s in unexpected state %q", sess.ID, info.State)
				}
				if _, _, err := s.Events(sess.ID, 0); err != nil {
					return err
				}
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Everything completed; now deletes race against nothing and the
	// registry ends empty of these sessions.
	for _, info := range infos {
		if err := s.Delete(ctx, info.ID); err != nil {
			t.Errorf("delete %s: %v", info.ID, err)
		}
	}
}

// TestKillRestoreIdentity simulates the SIGKILL path at the API level:
// no Shutdown, no final sweep — a second server opens the same data
// directory while the first is simply abandoned. Everything acked
// before the "kill" must be present and deterministic.
func TestKillRestoreIdentity(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s1, err := New(testConfig(dir))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a := mustCreate(t, s1, "", testSessionConfig(901))
	if _, err := s1.Step(ctx, a.ID, 3); err != nil {
		t.Fatalf("step: %v", err)
	}
	// Evict so the snapshot is on disk (a SIGKILL would otherwise lose
	// only the in-memory progress, which is recomputed).
	if _, err := s1.Evict(ctx, a.ID); err != nil {
		t.Fatalf("evict: %v", err)
	}
	// Abandon s1 without shutdown — its engines are all parked, so the
	// only trace is its goroutines; the files are the contract.
	s2, err := New(testConfig(dir))
	if err != nil {
		t.Fatalf("New after simulated kill: %v", err)
	}
	t.Cleanup(func() {
		c, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		s2.Shutdown(c)
		s1.Shutdown(c)
	})
	info, err := s2.Get(a.ID)
	if err != nil || info.Boundaries != 3 {
		t.Fatalf("restored session = %+v, %v; want 3 boundaries", info, err)
	}
	got := mustFinish(t, s2, a.ID).Result.Fingerprint
	twin := mustCreate(t, s2, "", testSessionConfig(901))
	if want := mustFinish(t, s2, twin.ID).Result.Fingerprint; got != want {
		t.Errorf("killed-and-restored fingerprint %s != twin %s", got, want)
	}
}
