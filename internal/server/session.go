package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cachesim"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/platform/sim"
	"repro/internal/rt"
	"repro/internal/snapshot"
	"repro/internal/workloads"
)

// State is a session's lifecycle state. The machine is
//
//	idle ──step──▶ live ──completes──▶ done
//	 ▲               │ ╲
//	 └──── evict ────┘  ╲─ panic/stall ──▶ failed
//
// where "idle" covers both a fresh session (no progress yet) and an
// evicted one (progress checkpointed to disk). done and failed are
// terminal; a deleted session simply ceases to exist.
type State string

const (
	// StateIdle: no engine resident. The session's progress, if any,
	// lives in its last boundary snapshot (in memory or on disk) and is
	// transparently resumed on the next step.
	StateIdle State = "idle"
	// StateLive: an engine is resident — executing a granted step or
	// parked at a quantum boundary waiting for the next one.
	StateLive State = "live"
	// StateDone: the workload ran to completion; Result is final.
	StateDone State = "done"
	// StateFailed: the session's engine panicked, stalled, or hit an
	// unrecoverable error. Only this session is affected; Failure
	// carries the diagnostic (including the stack for panics).
	StateFailed State = "failed"
	// StateMigrating: a cross-instance handoff is in flight (or was
	// interrupted by a crash and is being resolved against the target).
	// Steps are refused with 409 until the migration commits or the
	// session is reclaimed; on disk this state renders as idle — the
	// durable marker for an in-flight handoff is the intent record.
	StateMigrating State = "migrating"
	// StateMigrated: the session committed to another instance. The
	// local record is a tombstone answering further requests with 410
	// and the new location; delete it to reclaim the directory entry.
	StateMigrated State = "migrated"
)

// SessionConfig is the client-supplied simulation configuration of one
// session — the same knobs as one atsim run, plus the quantum that
// paces stepping.
type SessionConfig struct {
	// App names the workload (tasks, merge, photo, tsp).
	App string `json:"app"`
	// Policy is the scheduling policy (FCFS, LFF, CRT, ...).
	Policy string `json:"policy"`
	// CPUs selects the platform (1 = Ultra-1, >1 = E5000).
	CPUs int `json:"cpus"`
	// Scale shrinks the workload; bounded by the server's MaxScale.
	Scale float64 `json:"scale"`
	// Seed fixes all simulation randomness; equal configs with equal
	// seeds produce bit-identical runs, which is what the service's
	// crash-recovery guarantees rest on.
	Seed uint64 `json:"seed"`
	// Quantum is the step granularity in virtual cycles: each step
	// advances the simulation to the next multiple(s) of Quantum, and
	// each boundary is a valid eviction/checkpoint point. Fixed for the
	// session's lifetime.
	Quantum uint64 `json:"quantum"`
	// Topology optionally selects the cache organisation (see
	// cachesim.ParseTopology); empty means private-dm.
	Topology string `json:"topology,omitempty"`
	// DisableAnnotations runs the annotation ablation.
	DisableAnnotations bool `json:"no_annotations,omitempty"`
	// PanicAtBoundary injects a panic on the engine goroutine when the
	// session crosses its Nth quantum boundary — the chaos probe behind
	// the crash-isolation gate. Admitted only when the server runs with
	// chaos enabled.
	PanicAtBoundary uint64 `json:"panic_at_boundary,omitempty"`
	// Obs selects the engine observability level: "off", "metrics" or
	// "trace" (empty = the server's -session-obs default). Trace-level
	// sessions publish engine events to the live /obs stream and the
	// flight recorder. Fixed at admission: the level feeds the
	// checkpoint config and the state fingerprint, so changing it
	// mid-life would break resume verification.
	Obs string `json:"obs,omitempty"`
	// ObsRing is the capacity of the engine's event rings (0 = the
	// server's -obs-ring default, applied at admission for traced
	// sessions). Pinned per session because the retained-event set is
	// part of the obs digest a resume must reproduce.
	ObsRing int `json:"obs_ring,omitempty"`
}

func (c SessionConfig) withDefaults(srv Config) SessionConfig {
	if c.App == "" {
		c.App = "tasks"
	}
	if c.Policy == "" {
		c.Policy = "LFF"
	}
	if c.CPUs == 0 {
		c.CPUs = 2
	}
	if c.Scale == 0 {
		c.Scale = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Quantum == 0 {
		c.Quantum = srv.DefaultQuantum
	}
	if c.Obs == "" {
		c.Obs = srv.SessionObs
	}
	if c.ObsRing == 0 && c.obsLevel() >= obs.Trace {
		c.ObsRing = srv.ObsRingSize
	}
	return c
}

// obsLevel parses the session's observability level; an unset or
// unparsable value reads as Off (validate rejects bad values at
// admission, so restored sessions can only hold levels that parse).
func (c SessionConfig) obsLevel() obs.Level {
	lvl, err := obs.ParseLevel(c.Obs)
	if err != nil {
		return obs.Off
	}
	return lvl
}

// validate rejects a config at admission time, so nothing bad reaches
// an engine (or a snapshot) later.
func (c SessionConfig) validate(srv Config) error {
	if _, err := workloads.SchedAppByName(c.App); err != nil {
		return err
	}
	if _, err := model.SchemeFor(c.Policy); err != nil {
		return err
	}
	topo, err := cachesim.ParseTopology(c.Topology)
	if err != nil {
		return err
	}
	if err := c.machineConfig(topo).Validate(); err != nil {
		return err
	}
	if c.Scale <= 0 || c.Scale > srv.MaxScale {
		return fmt.Errorf("scale %v outside (0, %v]", c.Scale, srv.MaxScale)
	}
	if c.Quantum < srv.MinQuantum || c.Quantum > srv.MaxQuantum {
		return fmt.Errorf("quantum %d outside [%d, %d] cycles", c.Quantum, srv.MinQuantum, srv.MaxQuantum)
	}
	if c.PanicAtBoundary > 0 && !srv.EnableChaos {
		return fmt.Errorf("panic_at_boundary requires a server started with chaos injection enabled")
	}
	if _, err := obs.ParseLevel(c.Obs); err != nil {
		return err
	}
	if c.ObsRing < 0 {
		return fmt.Errorf("obs_ring %d is negative", c.ObsRing)
	}
	return nil
}

// machineConfig maps the session's platform knobs to the paper's
// machines, exactly as atsim's flags do.
func (c SessionConfig) machineConfig(topo cachesim.Topology) machine.Config {
	cfg := machine.UltraSPARC1()
	if c.CPUs != 1 {
		cfg = machine.Enterprise5000(c.CPUs)
	}
	cfg.Topology = topo
	return cfg
}

// kv renders the config fields the engine cannot verify natively
// (policy, seed, CPU count, cache geometry and quantum are checked by
// rt itself) into the snapshot's config record, so a session snapshot
// can never resume a differently-configured session.
func (c SessionConfig) kv() []snapshot.KV {
	out := []snapshot.KV{
		{K: "app", V: c.App},
		{K: "scale", V: fmt.Sprintf("%g", c.Scale)},
		{K: "noannot", V: fmt.Sprintf("%t", c.DisableAnnotations)},
		{K: "topology", V: c.Topology},
		{K: "panicat", V: fmt.Sprintf("%d", c.PanicAtBoundary)},
	}
	// Present only for observed sessions, so snapshots of obs-off
	// sessions keep the exact config record (and fingerprint) they had
	// before observability existed — old snapshots stay resumable.
	if lvl := c.obsLevel(); lvl != obs.Off {
		out = append(out,
			snapshot.KV{K: "obs", V: lvl.String()},
			snapshot.KV{K: "obsring", V: fmt.Sprintf("%d", c.ObsRing)},
		)
	}
	return out
}

// Result is a completed session's outcome. Fingerprint is the CRC64 of
// the engine's complete final state — the equality the chaos gates
// compare: a session stepped, evicted, resumed and crash-recovered any
// number of times finishes with the same fingerprint as an
// uninterrupted run of the same config.
type Result struct {
	Fingerprint string `json:"fingerprint"`
	ERefs       uint64 `json:"e_refs"`
	EMisses     uint64 `json:"e_misses"`
	Cycles      uint64 `json:"cycles"`
	Instrs      uint64 `json:"instrs"`
	Dispatches  uint64 `json:"dispatches"`
}

// Session is one hosted simulation. Fields below mu are guarded by it;
// stepMu serializes step execution (a cap-1 semaphore so waiting
// honors contexts).
type Session struct {
	ID     string
	Tenant string
	Cfg    SessionConfig

	stepMu chan struct{}

	mu      sync.Mutex
	deleted bool
	state   State
	// snap is the latest boundary capture when it lives in memory;
	// onDisk reports that the snapshot file is current. Both false/nil
	// means no progress yet (a step starts from cycle 0).
	snap   *snapshot.State
	onDisk bool
	// gen counts manifest-relevant mutations; cleanGen is gen as of the
	// last successful manifest write, so gen != cleanGen means "dirty"
	// and a persist that raced a mutation never marks it clean.
	gen        uint64
	cleanGen   uint64
	boundaries uint64
	cycle      uint64
	evictions  uint64
	resumes    uint64
	result     *Result
	failure    string
	lastTouch  uint64
	live       *liveEngine
	// epoch is the session's fencing epoch: bumped once per migration
	// attempt, recorded in the intent before the transfer and in both
	// manifests after. The target refuses any envelope at or below an
	// epoch it has already seen or fenced, which is what makes crash
	// recovery exactly-once (re-push or reclaim, never both).
	epoch uint64
	// migratedTo is the committed target's base URL once state is
	// StateMigrated — the Location a 410 response carries.
	migratedTo string
	// migratedFrom records provenance: the source instance (when it
	// announced one) this session last migrated in from.
	migratedFrom string
	events       *eventLog
	// obsLog is the published engine-event stream: drained from the
	// engine's obs stream ring at quantum boundaries, consumed by the
	// /obs endpoint and the flight recorder. Always non-nil; empty and
	// closed for unobserved or restored-terminal sessions.
	obsLog *obsLog
}

func newSession(id, tenant string, cfg SessionConfig, obsLogCap int) *Session {
	return &Session{
		ID: id, Tenant: tenant, Cfg: cfg,
		stepMu: make(chan struct{}, 1),
		state:  StateIdle,
		gen:    1,
		events: newEventLog(eventLogCap),
		obsLog: newObsLog(obsLogCap),
	}
}

// lockStep acquires the session's step slot, honoring ctx.
func (sess *Session) lockStep(ctx context.Context) error {
	select {
	case sess.stepMu <- struct{}{}:
		return nil
	case <-ctx.Done():
		return &DeadlineError{Op: "waiting for an in-flight step of session " + sess.ID, Err: ctx.Err()}
	}
}

func (sess *Session) unlockStep() { <-sess.stepMu }

// noteBoundary records one crossed quantum boundary; called from the
// engine goroutine.
func (sess *Session) noteBoundary(st *snapshot.State) uint64 {
	sess.mu.Lock()
	sess.snap = st
	sess.onDisk = false
	sess.gen++
	sess.boundaries++
	sess.cycle = st.Now
	n := sess.boundaries
	sess.mu.Unlock()
	sess.events.append(Event{Kind: "boundary", Boundaries: n, Cycle: st.Now})
	return n
}

// migrationGateLocked refuses writes against sessions that committed
// to another instance (410 + location) or whose handoff is still in
// flight (409). Callers hold sess.mu.
func (sess *Session) migrationGateLocked() error {
	switch sess.state {
	case StateMigrated:
		return &MigratedError{ID: sess.ID, Location: sess.migratedTo}
	case StateMigrating:
		return &MigratingError{ID: sess.ID}
	}
	return nil
}

// outcomeLocked composes the step-visible view of the session. Callers
// hold sess.mu.
func (sess *Session) outcomeLocked() stepOutcome {
	return stepOutcome{
		state:      sess.state,
		boundaries: sess.boundaries,
		cycle:      sess.cycle,
		evictions:  sess.evictions,
		result:     sess.result,
		failure:    sess.failure,
	}
}

// Info is the API-visible session summary.
type Info struct {
	ID           string        `json:"id"`
	Tenant       string        `json:"tenant"`
	State        State         `json:"state"`
	Config       SessionConfig `json:"config"`
	Boundaries   uint64        `json:"boundaries"`
	Cycle        uint64        `json:"cycle"`
	Evictions    uint64        `json:"evictions"`
	Resumes      uint64        `json:"resumes"`
	Result       *Result       `json:"result,omitempty"`
	Failure      string        `json:"failure,omitempty"`
	Epoch        uint64        `json:"epoch,omitempty"`
	MigratedTo   string        `json:"migrated_to,omitempty"`
	MigratedFrom string        `json:"migrated_from,omitempty"`
}

func (sess *Session) info() Info {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return Info{
		ID: sess.ID, Tenant: sess.Tenant, State: sess.state, Config: sess.Cfg,
		Boundaries: sess.boundaries, Cycle: sess.cycle,
		Evictions: sess.evictions, Resumes: sess.resumes,
		Result: sess.result, Failure: sess.failure,
		Epoch: sess.epoch, MigratedTo: sess.migratedTo, MigratedFrom: sess.migratedFrom,
	}
}

// errEvictRequested aborts a run at a quantum boundary: the engine is
// being evicted (or the server is draining), not failing. It travels
// through rt.Engine.Run wrapped, hence errors.Is below.
var errEvictRequested = errors.New("server: evict requested at boundary")

// grant hands one step's budget to the engine goroutine. quanta == 0
// means run to completion. outcome is buffered so the engine never
// blocks answering a handler that already gave up.
type grant struct {
	quanta  uint64
	outcome chan stepOutcome
	// req is the X-Request-ID of the step that issued the grant, so
	// the engine-side trace spans join the request's server spans.
	req string
}

type stepOutcome struct {
	state      State
	boundaries uint64
	cycle      uint64
	evictions  uint64
	result     *Result
	failure    string
	// evicted marks an outcome delivered because the engine unwound
	// (eviction/drain) before the grant was satisfied; remaining is the
	// unexecuted part of the grant's budget, so the caller can resume
	// the step transparently (0 after an unlimited grant — retrying 0
	// again means "to completion", which is what was asked).
	evicted   bool
	remaining uint64
}

// liveEngine is a resident engine: one goroutine running (or parked
// inside) rt.Engine.Run, controlled through the checkpoint-boundary
// gate. All fields below the channels belong to the engine goroutine.
type liveEngine struct {
	srv  *Server
	sess *Session

	grants   chan *grant
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	// phase is the engine's claim state. Transitions are CAS-only in
	// the directions that race: the engine goroutine takes
	// parked→busy when it accepts a grant, and an evictor takes
	// parked→evicting to reserve a victim. Exactly one wins, so a
	// pressure eviction can never land on an engine that has started
	// executing a step — an accepted-but-claimed grant is handed back
	// untouched instead (full budget, retried by Step).
	phase atomic.Int32

	eng          *rt.Engine
	current      *grant
	credit       uint64
	unlimited    bool
	holdingToken bool
	// obsv is the session's engine observer (nil when the session's
	// obs level is off). Its rings are single-writer state of this
	// goroutine; the rest of the server only sees events after
	// publishObs copies them into the session's obsLog.
	obsv *obs.Observer
	// runStart is the wall clock at compute-token acquisition for the
	// current grant; zero while parked. Feeds the engine.run spans.
	runStart time.Time
}

// liveEngine.phase values.
const (
	// engineParked: at the gate, no unconsumed step credit; the only
	// state an evictor may claim.
	engineParked int32 = iota
	// engineBusy: holding step credit — queued for a token or
	// executing simulation.
	engineBusy
	// engineEvicting: reserved by an evictor; the engine unwinds
	// instead of accepting work.
	engineEvicting
)

func newLiveEngine(s *Server, sess *Session) *liveEngine {
	return &liveEngine{
		srv: s, sess: sess,
		grants: make(chan *grant, 4),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// requestStop asks the engine to unwind at its next gate visit
// (immediately if parked). Idempotent.
func (le *liveEngine) requestStop() { le.stopOnce.Do(func() { close(le.stop) }) }

// loop is the engine goroutine. Any panic — an injected chaos panic, a
// workload bug, an engine invariant violation — is recovered HERE, so
// it fails exactly this session while the server and every other
// session keep running.
func (le *liveEngine) loop() {
	var (
		runErr    error
		res       *Result
		completed bool
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				le.srv.met.panicsRecovered.Add(le.srv.shard(le.sess.ID), 1)
				runErr = fmt.Errorf("session panicked: %v\n\n%s", r, debug.Stack())
				completed = false
			}
		}()
		res, completed, runErr = le.run()
	}()
	// Final drain: events past the last boundary (the completion tail,
	// or whatever a panic/stall/abort left in the ring) reach the
	// obsLog before the exit is classified — the flight recorder sees
	// the engine's last recorded moments.
	le.publishObs()
	le.endRunSpan()
	le.srv.engineExited(le, res, completed, runErr)
}

// publishObs drains the observer's stream ring into the session's
// obsLog. Must run on the engine goroutine (the ring is single-writer,
// and draining between emissions is only safe from the writer's side).
func (le *liveEngine) publishObs() {
	if le.obsv.Tracing() {
		le.sess.obsLog.publishFrom(le.obsv.Stream())
	}
}

// endRunSpan closes the current engine.run span, if one is open.
func (le *liveEngine) endRunSpan() {
	if le.runStart.IsZero() {
		return
	}
	var req string
	if le.current != nil {
		req = le.current.req
	}
	sess := le.sess
	sess.mu.Lock()
	cycle, bnds := sess.cycle, sess.boundaries
	sess.mu.Unlock()
	le.srv.spans.add(span{
		name: "engine.run", sess: sess.ID, req: req,
		start: le.runStart, dur: time.Since(le.runStart),
		cycle: cycle, boundaries: bnds,
	})
	le.runStart = time.Time{}
}

// run executes the session until completion, eviction, failure, or
// hard cancellation. It parks before doing ANY work: ensuring a
// session live costs nothing until a step grants it credit.
func (le *liveEngine) run() (res *Result, completed bool, err error) {
	if !le.waitGrant(nil) {
		return nil, false, nil
	}
	defer le.releaseToken()
	sess, cfg := le.sess, le.sess.Cfg

	app, err := workloads.SchedAppByName(cfg.App)
	if err != nil {
		return nil, false, err // unreachable: validated at admission
	}
	topo, err := cachesim.ParseTopology(cfg.Topology)
	if err != nil {
		return nil, false, err
	}
	st, err := le.srv.loadResume(sess)
	if err != nil {
		return nil, false, err
	}
	mcfg := cfg.machineConfig(topo)
	if lvl := cfg.obsLevel(); lvl != obs.Off {
		// The stream ring shares the event rings' capacity: it holds
		// the emission-order tail the live /obs endpoint drains at each
		// boundary. Sized per session (cfg.ObsRing) because the event
		// rings feed the resume-verified obs digest.
		le.obsv = obs.New(mcfg.CPUs, obs.Options{
			Level:      lvl,
			RingSize:   cfg.ObsRing,
			StreamSize: cfg.ObsRing,
		})
	}
	m := machine.New(mcfg)
	e, err := rt.New(sim.New(m), rt.Options{
		Policy:             cfg.Policy,
		Seed:               cfg.Seed,
		DisableAnnotations: cfg.DisableAnnotations,
		StallTimeout:       le.srv.cfg.StallTimeout,
		Obs:                le.obsv,
		Checkpoint: rt.CheckpointConfig{
			Every:        cfg.Quantum,
			Config:       cfg.kv(),
			Resume:       st,
			OnCheckpoint: le.onBoundary,
		},
	})
	if err != nil {
		return nil, false, err
	}
	le.eng = e
	if st != nil {
		sess.noteResumed(st)
		le.srv.met.sessionsResumed.Add(le.srv.shard(sess.ID), 1)
	}
	app.Spawn(e, cfg.Scale)
	err = e.Run(le.srv.baseCtx)
	switch {
	case err == nil:
		refs, _, misses := m.Totals()
		return &Result{
			Fingerprint: fmt.Sprintf("%016x", e.CaptureState().Fingerprint()),
			ERefs:       refs,
			EMisses:     misses,
			Cycles:      m.MaxCycles(),
			Instrs:      m.TotalInstrs(),
			Dispatches:  e.Snapshot().TotalDispatches(),
		}, true, nil
	case errors.Is(err, errEvictRequested):
		return nil, false, nil
	default:
		return nil, false, err
	}
}

// onBoundary is the checkpoint-boundary gate, called by the engine at
// every Quantum multiple: deliver the fresh capture, pay one credit,
// and when the grant is spent park until the next one (or unwind on
// eviction). Returning errEvictRequested aborts Run with the session's
// newest boundary state already delivered — eviction loses nothing.
func (le *liveEngine) onBoundary(st *snapshot.State) error {
	n := le.sess.noteBoundary(st)
	le.srv.met.boundaries.Add(le.srv.shard(le.sess.ID), 1)
	// Publish BEFORE the chaos panic check: events up to this boundary
	// are visible to followers and the flight recorder even when the
	// very next instruction kills the engine.
	le.publishObs()
	if pa := le.sess.Cfg.PanicAtBoundary; pa > 0 && n >= pa {
		panic(fmt.Sprintf("chaos: injected panic at boundary %d of session %s", n, le.sess.ID))
	}
	if !le.unlimited {
		// The boundary just delivered is paid for BEFORE the stop check,
		// so an eviction's reported remaining budget is exact and a
		// resumed step never re-runs a quantum it already received.
		le.credit--
		if le.credit == 0 {
			le.endRunSpan()
			le.answerCurrent(le.sess.snapshotOutcome())
			if !le.waitGrant(le.eng) {
				return errEvictRequested
			}
			return nil
		}
	}
	select {
	case <-le.stop:
		return errEvictRequested
	default:
	}
	return nil
}

// waitGrant parks the engine goroutine until the next grant arrives,
// acquiring a compute token before returning true; false means
// eviction/shutdown was requested. While parked (and while queued for
// a token) it heartbeats the engine's stall watchdog: a gated session
// is idle, not stalled.
func (le *liveEngine) waitGrant(e *rt.Engine) bool {
	// Re-park with a CAS so an evictor's claim is never overwritten;
	// on the first call the engine is already parked and this is a
	// no-op either way.
	le.phase.CompareAndSwap(engineBusy, engineParked)
	le.releaseToken()
	tick := time.NewTicker(le.srv.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-le.stop:
			return false
		case g := <-le.grants:
			le.current = g
			le.credit = g.quanta
			le.unlimited = g.quanta == 0
			if !le.phase.CompareAndSwap(engineParked, engineBusy) {
				// An evictor claimed this engine while it was parked.
				// Unwind without executing; the exit path answers the
				// grant with its budget intact so Step retries it
				// against a resumed engine.
				return false
			}
			for {
				select {
				case <-le.stop:
					return false
				case le.srv.tokens <- struct{}{}:
					le.holdingToken = true
					le.runStart = time.Now()
					return true
				case <-tick.C:
					if e != nil {
						e.Heartbeat()
					}
				}
			}
		case <-tick.C:
			if e != nil {
				e.Heartbeat()
			}
		}
	}
}

func (le *liveEngine) releaseToken() {
	if le.holdingToken {
		<-le.srv.tokens
		le.holdingToken = false
	}
}

// answerCurrent delivers out to the in-flight grant, if any.
func (le *liveEngine) answerCurrent(out stepOutcome) {
	if le.current != nil {
		le.current.outcome <- out
		le.current = nil
	}
}

// snapshotOutcome is outcomeLocked behind the lock.
func (sess *Session) snapshotOutcome() stepOutcome {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.outcomeLocked()
}

func (sess *Session) noteResumed(st *snapshot.State) {
	sess.mu.Lock()
	sess.resumes++
	sess.gen++
	n := sess.boundaries
	sess.mu.Unlock()
	sess.events.append(Event{Kind: "resumed", Cycle: st.Now, Boundaries: n})
}

// manifestLocked renders the session's durable record. Callers hold
// sess.mu. A manifest never claims "live": an engine does not survive
// the process, so on disk a live session is an idle one. "migrating"
// likewise renders as idle — the intent record, not the manifest, is
// the durable marker of an in-flight handoff, so a crash mid-migration
// restores an idle session plus an intent to resolve.
func (sess *Session) manifestLocked() manifest {
	st := sess.state
	if st == StateLive || st == StateMigrating {
		st = StateIdle
	}
	return manifest{
		ID: sess.ID, Tenant: sess.Tenant, Config: sess.Cfg, State: st,
		Boundaries: sess.boundaries, Cycle: sess.cycle,
		Evictions: sess.evictions, Resumes: sess.resumes,
		Result: sess.result, Failure: sess.failure,
		Epoch: sess.epoch, MigratedTo: sess.migratedTo, MigratedFrom: sess.migratedFrom,
	}
}
