// Package server is atsimd's core: a crash-tolerant multi-session
// simulation service. Each session hosts one deterministic engine run
// (internal/rt) stepped quantum by quantum; the server shards live
// sessions across a bounded compute pool, admits work against session
// and tenant limits, evicts cold sessions to disk snapshots under
// memory pressure, resumes them transparently (and verifies the resume
// bit-for-bit — the engine's deterministic fast-forward), isolates
// per-session panics, and survives SIGKILL: on restart every admitted
// session is restored from its manifest and continues to the same
// fingerprint an uninterrupted run would have produced.
package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/retry"
	"repro/internal/snapshot"
)

// Config tunes one Server. The zero value of any field selects its
// documented default.
type Config struct {
	// DataDir holds manifests and snapshots (required).
	DataDir string
	// MaxSessions bounds resident sessions, any state (default 16384).
	MaxSessions int
	// MaxLive bounds sessions with a resident engine — executing or
	// parked at a boundary gate (default 64). Above it, steps evict the
	// least-recently-touched parked session or get 429.
	MaxLive int
	// Workers bounds sessions executing simulation concurrently — the
	// compute token pool (default GOMAXPROCS).
	Workers int
	// TenantQuota bounds resident sessions per tenant; 0 = unlimited.
	TenantQuota int
	// RequestTimeout is the HTTP layer's per-request deadline (default
	// 30s). A step that outlives it keeps executing server-side; only
	// the response is abandoned.
	RequestTimeout time.Duration
	// StallTimeout arms each engine's stall watchdog (default 30s; the
	// boundary gate heartbeats it while a session is parked).
	StallTimeout time.Duration
	// DrainTimeout bounds graceful shutdown before engines are
	// hard-aborted (default 10s); used by callers of Shutdown.
	DrainTimeout time.Duration
	// MaxScale bounds admitted workload scale (default 1.0).
	MaxScale float64
	// MinQuantum/MaxQuantum bound session quanta in cycles (defaults
	// 1000 and 100M); DefaultQuantum fills an omitted quantum (100k).
	MinQuantum, MaxQuantum, DefaultQuantum uint64
	// EnableChaos admits sessions with panic_at_boundary set.
	EnableChaos bool
	// Retry shapes all store IO retries (zero value = package
	// defaults: 4 attempts, 5ms base, 500ms cap).
	Retry retry.Policy
	// HeartbeatEvery paces watchdog heartbeats from parked engines
	// (default 1s; must stay below StallTimeout).
	HeartbeatEvery time.Duration
	// SessionObs is the engine observability level for sessions that
	// do not pick one: "off", "metrics" or "trace" (default "trace" —
	// the paper's premise is that always-on telemetry is cheap enough
	// to leave on).
	SessionObs string
	// ObsRingSize is the default per-session engine event-ring (and
	// stream-ring) capacity in events (default 4096, ~256KB/CPU at 64B
	// per event; MaxLive bounds how many sessions hold rings at once).
	ObsRingSize int
	// ObsLogCap bounds each session's published engine-event log — the
	// tail the /obs endpoint and flight recorder can see (default
	// 8192). Older events fall off as an explicit gap record.
	ObsLogCap int
	// TraceSpanCap bounds the server's wall-clock span ring behind
	// /debug/server-trace (default 16384).
	TraceSpanCap int
	// AccessLog, when non-nil, receives one structured JSON line per
	// HTTP request (request id, method, path, status, duration).
	AccessLog io.Writer
	// PeerAllow lists URL prefixes acceptable as migration peers (e.g.
	// "http://10.0.0.0:" or a full base URL). Empty disables migration
	// entirely: both the outbound endpoint and inbound transfers are
	// refused. "*" allows any http(s) peer.
	PeerAllow []string
	// MaxMigrations bounds concurrent migrations per direction
	// (default 4); excess requests get 429.
	MaxMigrations int
	// MigrateTimeout bounds each migration phase: parking the engine,
	// one transfer attempt (the per-attempt retry bound), and one
	// recovery query (default 20s).
	MigrateTimeout time.Duration
	// AdvertiseURL is this instance's own base URL as peers should
	// record it; purely provenance (migrated_from) when set.
	AdvertiseURL string
	// CrashPoint, when non-nil, is called at each named migration phase
	// boundary (source.prepared, source.intent, source.push,
	// source.acked, source.committed, target.received, target.snapshot,
	// target.manifest). A non-nil return simulates the process dying at
	// that instant: the migration code abandons all cleanup and
	// propagates the error, exactly as a SIGKILL would leave things.
	// cmd/atsimd wires -chaos-migrate-kill to a real SIGKILL here.
	CrashPoint func(point string) error
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16384
	}
	if c.MaxLive <= 0 {
		c.MaxLive = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxScale <= 0 {
		c.MaxScale = 1.0
	}
	if c.MinQuantum == 0 {
		c.MinQuantum = 1000
	}
	if c.MaxQuantum == 0 {
		c.MaxQuantum = 100_000_000
	}
	if c.DefaultQuantum == 0 {
		c.DefaultQuantum = 100_000
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if hb := c.StallTimeout / 4; c.HeartbeatEvery > hb && hb > 0 {
		c.HeartbeatEvery = hb
	}
	if c.SessionObs == "" {
		c.SessionObs = "trace"
	}
	if c.ObsRingSize <= 0 {
		c.ObsRingSize = 4096
	}
	if c.ObsLogCap <= 0 {
		c.ObsLogCap = 8192
	}
	if c.TraceSpanCap <= 0 {
		c.TraceSpanCap = 16384
	}
	if c.MaxMigrations <= 0 {
		c.MaxMigrations = 4
	}
	if c.MigrateTimeout <= 0 {
		c.MigrateTimeout = 20 * time.Second
	}
	return c
}

// Typed errors the API layer maps to status codes.

// ErrNotFound: no such session.
var ErrNotFound = errors.New("server: session not found")

// ErrDraining: the server is shutting down and admits no new work.
var ErrDraining = errors.New("server: draining, not accepting new work")

// OverloadError is backpressure: the caller should retry after
// RetryAfter (429 + Retry-After over HTTP).
type OverloadError struct {
	Reason     string
	RetryAfter time.Duration
	// Quota marks a per-tenant rejection (retrying won't help until
	// that tenant deletes sessions).
	Quota bool
}

func (e *OverloadError) Error() string { return "server: overloaded: " + e.Reason }

// DeadlineError: the request's context expired while the server was
// still working; server-side progress continues.
type DeadlineError struct {
	Op  string
	Err error
}

func (e *DeadlineError) Error() string { return "server: deadline: " + e.Op + ": " + e.Err.Error() }
func (e *DeadlineError) Unwrap() error { return e.Err }

// ValidationError: the session config was rejected at admission.
type ValidationError struct{ Err error }

func (e *ValidationError) Error() string { return "server: invalid session config: " + e.Err.Error() }
func (e *ValidationError) Unwrap() error { return e.Err }

// MigratedError: the session committed to another instance. Location
// is its new base URL; over HTTP this is 410 Gone plus a Location
// header rewritten for the request's path, which atsimload follows
// exactly once.
type MigratedError struct {
	ID       string
	Location string
}

func (e *MigratedError) Error() string {
	return "server: session " + e.ID + " migrated to " + e.Location
}

// MigratingError: a handoff (or its crash recovery) is in flight; the
// session accepts no writes until it resolves. 409 + Retry-After over
// HTTP.
type MigratingError struct{ ID string }

func (e *MigratingError) Error() string {
	return "server: session " + e.ID + " has a migration in flight; retry shortly"
}

// FencedError: a migration transfer carried a stale fencing epoch — a
// newer attempt (or a recovery decision) superseded it. 409 over HTTP;
// the source aborts rather than retrying.
type FencedError struct {
	ID     string
	Epoch  uint64 // the stale epoch presented
	Fenced uint64 // the epoch-or-higher the target holds or has fenced
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("server: migration of %s fenced: epoch %d is not newer than %d", e.ID, e.Epoch, e.Fenced)
}

// ConflictError: the operation is valid in general but not in the
// session's current state (e.g. migrating a terminal session). 409.
type ConflictError struct{ Err error }

func (e *ConflictError) Error() string { return "server: conflict: " + e.Err.Error() }
func (e *ConflictError) Unwrap() error { return e.Err }

// errRecheck is internal: the session changed state underfoot; the
// step loop re-reads it.
var errRecheck = errors.New("server: session state changed, recheck")

type metrics struct {
	sessionsCreated *obs.Counter
	sessionsDone    *obs.Counter
	sessionsFailed  *obs.Counter
	sessionsEvicted *obs.Counter
	sessionsResumed *obs.Counter
	sessionsDeleted *obs.Counter
	steps           *obs.Counter
	boundaries      *obs.Counter
	rejectedOver    *obs.Counter
	rejectedQuota   *obs.Counter
	panicsRecovered *obs.Counter
	ioFailures      *obs.Counter
	quarantined     *obs.Counter
	liveGauge       *obs.Gauge
	residentGauge   *obs.Gauge
	stepSeconds     *obs.Histogram
	flightDumps     *obs.Counter
	admissionWait   *obs.Histogram
	evictionSecs    *obs.Histogram
	snapWriteSecs   *obs.Histogram
	migStarted      *obs.Counter
	migCommitted    *obs.Counter
	migAborted      *obs.Counter
	migFenced       *obs.Counter
	migIn           *obs.Counter
	migSeconds      *obs.Histogram
}

// Server hosts sessions. Lock order: Server.mu before Session.mu.
type Server struct {
	cfg     Config
	store   *store
	reg     *obs.Registry
	nshards int
	met     metrics

	// baseCtx parents every engine run; cancel is the hard abort of
	// last resort during shutdown.
	baseCtx context.Context
	cancel  context.CancelFunc

	// tokens is the compute pool: an engine holds a token while
	// executing simulation and releases it while parked at the gate.
	tokens chan struct{}

	// tick is the logical clock behind LRU eviction.
	tick atomic.Uint64

	// spans is the bounded wall-clock span recorder behind
	// /debug/server-trace; reqSeq numbers generated request IDs and
	// bootNanos makes them unique across restarts. logMu serializes
	// access-log writes.
	spans     *spanLog
	reqSeq    atomic.Uint64
	bootNanos int64
	logMu     sync.Mutex

	// Migration plumbing: the peer HTTP client, per-direction
	// concurrency slots, a per-session-ID lock serializing inbound
	// commits against recovery-status queries, and the in-memory fence
	// table those queries write (see migrate.go for the protocol).
	peer      *peerClient
	migOut    chan struct{}
	migIn     chan struct{}
	migLocks  *idLocks
	fenceMu   sync.Mutex
	migFences map[string]uint64

	mu        sync.Mutex
	draining  bool
	sessions  map[string]*Session
	tenants   map[string]int
	liveCount int
	seq       uint64
}

// New builds a server over DataDir, restoring every session a previous
// process left there.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("server: Config.DataDir is required")
	}
	if _, err := obs.ParseLevel(cfg.SessionObs); err != nil {
		return nil, fmt.Errorf("server: SessionObs: %w", err)
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		store:     &store{dir: cfg.DataDir, pol: cfg.Retry},
		baseCtx:   baseCtx,
		cancel:    cancel,
		tokens:    make(chan struct{}, cfg.Workers),
		sessions:  make(map[string]*Session),
		tenants:   make(map[string]int),
		spans:     newSpanLog(cfg.TraceSpanCap),
		bootNanos: time.Now().UnixNano(),
		peer:      newPeerClient(cfg),
		migOut:    make(chan struct{}, cfg.MaxMigrations),
		migIn:     make(chan struct{}, cfg.MaxMigrations),
		migLocks:  newIDLocks(),
		migFences: make(map[string]uint64),
	}
	s.initMetrics()
	if err := s.restore(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

func (s *Server) initMetrics() {
	s.nshards = runtime.GOMAXPROCS(0)
	if s.nshards < 1 {
		s.nshards = 1
	}
	s.reg = obs.NewRegistry(s.nshards)
	s.met = metrics{
		sessionsCreated: s.reg.Counter("atsimd_sessions_created_total"),
		sessionsDone:    s.reg.Counter("atsimd_sessions_done_total"),
		sessionsFailed:  s.reg.Counter("atsimd_sessions_failed_total"),
		sessionsEvicted: s.reg.Counter("atsimd_sessions_evicted_total"),
		sessionsResumed: s.reg.Counter("atsimd_sessions_resumed_total"),
		sessionsDeleted: s.reg.Counter("atsimd_sessions_deleted_total"),
		steps:           s.reg.Counter("atsimd_steps_total"),
		boundaries:      s.reg.Counter("atsimd_boundaries_total"),
		rejectedOver:    s.reg.Counter("atsimd_rejected_overload_total"),
		rejectedQuota:   s.reg.Counter("atsimd_rejected_quota_total"),
		panicsRecovered: s.reg.Counter("atsimd_panics_recovered_total"),
		ioFailures:      s.reg.Counter("atsimd_io_failures_total"),
		quarantined:     s.reg.Counter("atsimd_manifests_quarantined_total"),
		liveGauge:       s.reg.Gauge("atsimd_sessions_live"),
		residentGauge:   s.reg.Gauge("atsimd_sessions_resident"),
		stepSeconds: s.reg.Histogram("atsimd_step_seconds",
			[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30}),
		flightDumps: s.reg.Counter("atsimd_flight_dumps_total"),
		// The RED latency histograms: where a step's wall time goes
		// before (admission), around (eviction) and after (snapshot
		// write) the simulation itself.
		admissionWait: s.reg.Histogram("atsimd_admission_wait_seconds",
			[]float64{0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}),
		evictionSecs: s.reg.Histogram("atsimd_eviction_seconds",
			[]float64{0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}),
		snapWriteSecs: s.reg.Histogram("atsimd_snapshot_write_seconds",
			[]float64{0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}),
		// Migration lifecycle: started counts attempts on the source,
		// committed/aborted their outcomes there, fenced counts stale
		// epochs refused (either side), and in counts transfers this
		// instance accepted as a target.
		migStarted:   s.reg.Counter("atsimd_migrations_started_total"),
		migCommitted: s.reg.Counter("atsimd_migrations_committed_total"),
		migAborted:   s.reg.Counter("atsimd_migrations_aborted_total"),
		migFenced:    s.reg.Counter("atsimd_migrations_fenced_total"),
		migIn:        s.reg.Counter("atsimd_migrations_in_total"),
		migSeconds: s.reg.Histogram("atsimd_migration_seconds",
			[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30}),
	}
}

// shard maps a session ID onto a metrics shard so hot counters stay
// spread across cache lines.
func (s *Server) shard(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(s.nshards))
}

// restore rebuilds the session table from the data directory.
func (s *Server) restore() error {
	recs, err := s.store.scan(s.cfg.Workers)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if r.quarantined {
			s.met.quarantined.Inc(0)
			fmt.Fprintf(os.Stderr, "atsimd: quarantined unreadable manifest %s: %v\n", r.path, r.err)
			continue
		}
		m := r.man
		sess := newSession(m.ID, m.Tenant, m.Config, s.cfg.ObsLogCap)
		sess.state = m.State
		if sess.state == StateLive || sess.state == StateMigrating || sess.state == "" {
			sess.state = StateIdle
		}
		if sess.state == StateDone || sess.state == StateFailed || sess.state == StateMigrated {
			// Terminal sessions will never publish again; engine events
			// died with the previous process (a failed session's tail
			// lives on in its flight file). Close so /obs followers
			// terminate instead of waiting forever.
			sess.obsLog.close()
		}
		sess.boundaries = m.Boundaries
		sess.cycle = m.Cycle
		sess.evictions = m.Evictions
		sess.resumes = m.Resumes
		sess.result = m.Result
		sess.failure = m.Failure
		sess.epoch = m.Epoch
		sess.migratedTo = m.MigratedTo
		sess.migratedFrom = m.MigratedFrom
		sess.onDisk = r.hasSnap
		sess.cleanGen = sess.gen // just loaded: disk is current
		sess.lastTouch = s.tick.Add(1)
		s.sessions[m.ID] = sess
		s.tenants[m.Tenant]++
		if n, ok := parseID(m.ID); ok && n > s.seq {
			s.seq = n
		}
	}
	s.updateGaugesLocked()
	s.recoverIntents()
	return nil
}

func parseID(id string) (uint64, bool) {
	if !strings.HasPrefix(id, "s-") {
		return 0, false
	}
	n, err := strconv.ParseUint(id[2:], 10, 64)
	return n, err == nil
}

func (s *Server) updateGaugesLocked() {
	s.met.liveGauge.Set(float64(s.liveCount))
	s.met.residentGauge.Set(float64(len(s.sessions)))
}

// CreateSession validates and admits a new session; the returned Info
// is durable — its manifest reached disk before this returns.
func (s *Server) CreateSession(ctx context.Context, tenant string, cfg SessionConfig) (Info, error) {
	if tenant == "" {
		tenant = "default"
	}
	cfg = cfg.withDefaults(s.cfg)
	if err := cfg.validate(s.cfg); err != nil {
		return Info{}, &ValidationError{Err: err}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Info{}, ErrDraining
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.met.rejectedOver.Inc(s.shard(tenant))
		return Info{}, &OverloadError{
			Reason:     fmt.Sprintf("server at capacity (%d resident sessions)", s.cfg.MaxSessions),
			RetryAfter: 5 * time.Second,
		}
	}
	if q := s.cfg.TenantQuota; q > 0 && s.tenants[tenant] >= q {
		s.mu.Unlock()
		s.met.rejectedQuota.Inc(s.shard(tenant))
		return Info{}, &OverloadError{
			Reason:     fmt.Sprintf("tenant %q at quota (%d resident sessions)", tenant, q),
			RetryAfter: 5 * time.Second,
			Quota:      true,
		}
	}
	s.seq++
	id := fmt.Sprintf("s-%06d", s.seq)
	sess := newSession(id, tenant, cfg, s.cfg.ObsLogCap)
	sess.lastTouch = s.tick.Add(1)
	s.sessions[id] = sess
	s.tenants[tenant]++
	s.updateGaugesLocked()
	s.mu.Unlock()

	// Durable admission: acknowledge only after the manifest is on
	// disk, so a kill -9 at any instant loses at most sessions the
	// client never heard about.
	if err := s.persistManifest(sess); err != nil {
		s.dropSession(sess, true)
		return Info{}, fmt.Errorf("server: persisting new session: %w", err)
	}
	s.met.sessionsCreated.Inc(s.shard(id))
	sess.events.append(Event{Kind: "created"})
	return sess.info(), nil
}

func (s *Server) lookup(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return sess, nil
}

// Get returns one session's summary.
func (s *Server) Get(id string) (Info, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return Info{}, err
	}
	return sess.info(), nil
}

// List returns every resident session, sorted by ID.
func (s *Server) List() []Info {
	s.mu.Lock()
	all := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	s.mu.Unlock()
	out := make([]Info, 0, len(all))
	for _, sess := range all {
		out = append(out, sess.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Events returns the session's buffered events after seq, plus a
// channel closed at the next append (for followers).
func (s *Server) Events(id string, after uint64) ([]Event, <-chan struct{}, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return nil, nil, err
	}
	evs, notify := sess.events.since(after)
	return evs, notify, nil
}

// ObsEvents returns the session's published engine events with
// sequence numbers > after, the channel closed at the next publish,
// and whether the stream is complete (terminal session). The live /obs
// endpoint is a loop over this.
func (s *Server) ObsEvents(id string, after uint64) ([]obsEntry, <-chan struct{}, bool, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return nil, nil, false, err
	}
	entries, notify, closed := sess.obsLog.since(after)
	return entries, notify, closed, nil
}

// StepResult is one step call's outcome.
type StepResult struct {
	ID         string  `json:"id"`
	State      State   `json:"state"`
	Boundaries uint64  `json:"boundaries"`
	Cycle      uint64  `json:"cycle"`
	Evictions  uint64  `json:"evictions"`
	Result     *Result `json:"result,omitempty"`
	Failure    string  `json:"failure,omitempty"`
}

// Step advances a session by quanta checkpoint boundaries (0 = run to
// completion). Steps on one session serialize; the engine is created,
// resumed from its snapshot, or reused at its gate as needed, and an
// eviction racing the step is absorbed by resuming and finishing the
// remaining budget. A ctx deadline abandons only the response — the
// granted work keeps executing and lands in the session.
func (s *Server) Step(ctx context.Context, id string, quanta uint64) (StepResult, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return StepResult{}, err
	}
	req := RequestID(ctx)
	admit := time.Now()
	if err := sess.lockStep(ctx); err != nil {
		return StepResult{}, err
	}
	defer sess.unlockStep()
	start := time.Now()
	s.met.admissionWait.Observe(s.shard(id), start.Sub(admit).Seconds())
	s.spans.add(span{name: "admission.wait", sess: id, req: req, start: admit, dur: start.Sub(admit)})
	s.met.steps.Inc(s.shard(id))
	defer func() {
		s.met.stepSeconds.Observe(s.shard(id), time.Since(start).Seconds())
	}()
	for {
		sess.mu.Lock()
		if sess.deleted {
			sess.mu.Unlock()
			return StepResult{}, ErrNotFound
		}
		if sess.state == StateDone || sess.state == StateFailed {
			out := sess.outcomeLocked()
			sess.mu.Unlock()
			return stepResultOf(id, out), nil
		}
		if err := sess.migrationGateLocked(); err != nil {
			sess.mu.Unlock()
			return StepResult{}, err
		}
		sess.mu.Unlock()

		le, err := s.ensureLive(ctx, sess)
		if err != nil {
			if errors.Is(err, errRecheck) {
				continue
			}
			return StepResult{}, err
		}
		g := &grant{quanta: quanta, outcome: make(chan stepOutcome, 1), req: req}
		granted := time.Now()
		select {
		case le.grants <- g:
		case <-le.done:
			continue
		case <-ctx.Done():
			return StepResult{}, &DeadlineError{Op: "queueing step for session " + id, Err: ctx.Err()}
		}
		var out stepOutcome
		select {
		case out = <-g.outcome:
		case <-le.done:
			select {
			case out = <-g.outcome:
			default:
				continue
			}
		case <-ctx.Done():
			return StepResult{}, &DeadlineError{Op: "executing step for session " + id, Err: ctx.Err()}
		}
		s.spans.add(span{name: "grant.wait", sess: id, req: req,
			start: granted, dur: time.Since(granted), quanta: quanta, cycle: out.cycle, boundaries: out.boundaries})
		if out.evicted && out.state == StateIdle {
			// The engine unwound (pressure eviction or explicit evict)
			// with this grant partly served; resume and finish the
			// remaining budget transparently.
			quanta = out.remaining
			continue
		}
		return stepResultOf(id, out), nil
	}
}

func stepResultOf(id string, out stepOutcome) StepResult {
	return StepResult{
		ID: id, State: out.state, Boundaries: out.boundaries, Cycle: out.cycle,
		Evictions: out.evictions, Result: out.result, Failure: out.failure,
	}
}

// ensureLive returns the session's resident engine, creating one (and
// evicting a cold victim if every live slot is taken). It returns
// OverloadError when all live sessions are busy executing — the
// backpressure signal — and errRecheck when the session reached a
// terminal state underfoot.
func (s *Server) ensureLive(ctx context.Context, sess *Session) (*liveEngine, error) {
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return nil, ErrDraining
		}
		sess.mu.Lock()
		if sess.deleted || sess.state == StateDone || sess.state == StateFailed ||
			sess.state == StateMigrated || sess.state == StateMigrating {
			sess.mu.Unlock()
			s.mu.Unlock()
			return nil, errRecheck
		}
		sess.lastTouch = s.tick.Add(1)
		if le := sess.live; le != nil {
			sess.mu.Unlock()
			s.mu.Unlock()
			return le, nil
		}
		if s.liveCount < s.cfg.MaxLive {
			le := newLiveEngine(s, sess)
			sess.live = le
			sess.state = StateLive
			sess.mu.Unlock()
			s.liveCount++
			s.updateGaugesLocked()
			s.mu.Unlock()
			sess.events.append(Event{Kind: "live"})
			go le.loop()
			return le, nil
		}
		sess.mu.Unlock()
		victim := s.claimVictimLocked(sess)
		s.mu.Unlock()
		if victim == nil {
			s.met.rejectedOver.Inc(s.shard(sess.ID))
			return nil, &OverloadError{
				Reason:     fmt.Sprintf("all %d live-session slots are executing steps", s.cfg.MaxLive),
				RetryAfter: time.Second,
			}
		}
		if err := s.evictWait(ctx, victim); err != nil {
			return nil, err
		}
	}
}

// claimVictimLocked (s.mu held) reserves the least-recently-touched
// live session that is parked at its gate — never one mid-step. The
// reservation is a parked→evicting CAS on the engine, so a candidate
// that accepts a grant concurrently loses the race atomically and is
// skipped; a claimed engine can no longer start executing. nil means
// every live engine is (or just became) busy.
func (s *Server) claimVictimLocked(exclude *Session) *Session {
	type cand struct {
		sess  *Session
		le    *liveEngine
		touch uint64
	}
	var cands []cand
	for _, c := range s.sessions {
		if c == exclude {
			continue
		}
		c.mu.Lock()
		le := c.live
		touch := c.lastTouch
		c.mu.Unlock()
		if le != nil {
			cands = append(cands, cand{c, le, touch})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].touch < cands[j].touch })
	for _, c := range cands {
		if c.le.phase.CompareAndSwap(engineParked, engineEvicting) {
			return c.sess
		}
	}
	return nil
}

// evictWait asks a session's engine to unwind at its gate and waits
// for the slot to free. No-op when the session is not live.
func (s *Server) evictWait(ctx context.Context, sess *Session) error {
	sess.mu.Lock()
	le := sess.live
	sess.mu.Unlock()
	if le == nil {
		return nil
	}
	start := time.Now()
	le.requestStop()
	select {
	case <-le.done:
		d := time.Since(start)
		s.met.evictionSecs.Observe(s.shard(sess.ID), d.Seconds())
		s.spans.add(span{name: "evict", sess: sess.ID, req: RequestID(ctx), start: start, dur: d})
		return nil
	case <-ctx.Done():
		return &DeadlineError{Op: "evicting session " + sess.ID, Err: ctx.Err()}
	}
}

// Evict explicitly parks a session to disk, freeing its live slot.
func (s *Server) Evict(ctx context.Context, id string) (Info, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return Info{}, err
	}
	sess.mu.Lock()
	gateErr := sess.migrationGateLocked()
	sess.mu.Unlock()
	if gateErr != nil {
		return Info{}, gateErr
	}
	if err := s.evictWait(ctx, sess); err != nil {
		return Info{}, err
	}
	return sess.info(), nil
}

// Delete removes a session and its files. A live engine is stopped
// first; the tombstone flag keeps a racing persist from resurrecting
// the files.
func (s *Server) Delete(ctx context.Context, id string) error {
	sess, err := s.lookup(id)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	if sess.deleted {
		sess.mu.Unlock()
		return ErrNotFound
	}
	sess.deleted = true
	le := sess.live
	sess.mu.Unlock()
	if le != nil {
		le.requestStop()
		select {
		case <-le.done:
		case <-ctx.Done():
			// Deletion is already marked; the engine will find the
			// tombstone when it unwinds. Fall through and remove now.
		}
	}
	s.dropSession(sess, true)
	s.met.sessionsDeleted.Inc(s.shard(id))
	sess.events.append(Event{Kind: "deleted"})
	sess.obsLog.close()
	return nil
}

// dropSession removes a session from the tables (and optionally its
// files). Idempotent.
func (s *Server) dropSession(sess *Session, removeFiles bool) {
	s.mu.Lock()
	if _, ok := s.sessions[sess.ID]; ok {
		delete(s.sessions, sess.ID)
		if s.tenants[sess.Tenant]--; s.tenants[sess.Tenant] <= 0 {
			delete(s.tenants, sess.Tenant)
		}
		s.updateGaugesLocked()
	}
	s.mu.Unlock()
	if removeFiles {
		s.store.removeSession(sess.ID)
	}
}

// loadResume fetches the session's resume state: the in-memory
// snapshot if the engine that produced it just unwound, else the disk
// snapshot, else nil (fresh run from cycle zero).
func (s *Server) loadResume(sess *Session) (*snapshot.State, error) {
	sess.mu.Lock()
	st := sess.snap
	onDisk := sess.onDisk
	sess.mu.Unlock()
	if st != nil {
		return st, nil
	}
	if !onDisk {
		return nil, nil
	}
	return s.store.loadSnapshot(sess.ID)
}

// persistManifest writes the session's manifest, with generation
// bookkeeping so a concurrent mutation is never marked clean. The
// delete tombstone is re-checked AFTER the (retried, potentially slow)
// write: if Delete removed the files mid-write, the write resurrected
// the manifest, so remove it again — either order of the final
// remove-vs-write leaves the files gone.
func (s *Server) persistManifest(sess *Session) error {
	sess.mu.Lock()
	if sess.deleted {
		sess.mu.Unlock()
		return nil
	}
	man := sess.manifestLocked()
	g := sess.gen
	sess.mu.Unlock()
	if err := s.store.writeManifest(man); err != nil {
		s.met.ioFailures.Inc(s.shard(sess.ID))
		return err
	}
	sess.mu.Lock()
	deleted := sess.deleted
	if !deleted && sess.cleanGen < g {
		sess.cleanGen = g
	}
	sess.mu.Unlock()
	if deleted {
		s.store.removeSession(sess.ID)
	}
	return nil
}

// persistSession makes the session durable: boundary snapshot to disk
// (for idle sessions holding one in memory), snapshot cleanup for done
// sessions, manifest when dirty. Failures are counted and logged via
// metrics but not fatal — the state stays in memory and the next
// persist retries.
func (s *Server) persistSession(sess *Session) {
	sess.mu.Lock()
	if sess.deleted {
		sess.mu.Unlock()
		return
	}
	st := sess.snap
	needSnap := st != nil && !sess.onDisk && sess.state == StateIdle
	dirty := sess.gen != sess.cleanGen
	done := sess.state == StateDone
	sess.mu.Unlock()
	if !dirty && !needSnap {
		return
	}
	if needSnap {
		t0 := time.Now()
		err := s.store.writeSnapshot(sess.ID, st)
		d := time.Since(t0)
		s.met.snapWriteSecs.Observe(s.shard(sess.ID), d.Seconds())
		s.spans.add(span{name: "snapshot.write", sess: sess.ID, start: t0, dur: d})
		if err != nil {
			s.met.ioFailures.Inc(s.shard(sess.ID))
			// An eviction that cannot persist its snapshot is the
			// third flight-recorder trigger: the session survives in
			// memory, but if the process dies before a later persist
			// succeeds, the flight file is the forensic record of what
			// the engine was doing.
			s.dumpFlight(sess, "eviction_failure", err.Error())
		} else {
			sess.mu.Lock()
			deleted := sess.deleted
			if !deleted && sess.snap == st {
				sess.onDisk = true
				sess.snap = nil
			}
			sess.mu.Unlock()
			if deleted {
				// Delete raced the write; scrub the just-recreated
				// snapshot (same tombstone protocol as persistManifest).
				s.store.removeSession(sess.ID)
				return
			}
		}
	}
	if done {
		s.store.removeSnapshot(sess.ID)
	}
	_ = s.persistManifest(sess)
}

// engineExited is the tail of every engine goroutine: classify the
// exit, persist, free the live slot, answer whoever is waiting.
func (s *Server) engineExited(le *liveEngine, res *Result, completed bool, runErr error) {
	sess := le.sess
	shard := s.shard(sess.ID)

	sess.mu.Lock()
	switch {
	case completed:
		sess.state = StateDone
		sess.result = res
		sess.snap = nil
		sess.onDisk = false
	case runErr == nil || errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded):
		// Evicted at a boundary — or hard-aborted during shutdown —
		// with the newest snapshot already delivered: resumable.
		sess.state = StateIdle
		if runErr == nil {
			sess.evictions++
		}
	default:
		sess.state = StateFailed
		sess.failure = runErr.Error()
	}
	sess.gen++
	out := sess.outcomeLocked()
	out.evicted = sess.state == StateIdle
	if le.current != nil && !le.unlimited {
		out.remaining = le.credit
	}
	cycle := sess.cycle
	bnds := sess.boundaries
	failure := sess.failure
	sess.mu.Unlock()

	switch out.state {
	case StateDone:
		s.met.sessionsDone.Inc(shard)
		sess.events.append(Event{Kind: "done", Cycle: cycle, Boundaries: bnds})
		sess.obsLog.close()
	case StateIdle:
		s.met.sessionsEvicted.Inc(shard)
		sess.events.append(Event{Kind: "evicted", Cycle: cycle, Boundaries: bnds})
	default:
		s.met.sessionsFailed.Inc(shard)
		sess.events.append(Event{Kind: "failed", Detail: firstLine(failure)})
		// Panic, stall-watchdog trip or engine error: dump the flight
		// record — the published engine-event tail plus the lifecycle
		// log — before closing the stream.
		s.dumpFlight(sess, failureReason(failure), failure)
		sess.obsLog.close()
	}

	s.persistSession(sess)

	s.mu.Lock()
	sess.mu.Lock()
	sess.live = nil
	sess.mu.Unlock()
	s.liveCount--
	s.updateGaugesLocked()
	s.mu.Unlock()

	le.answerCurrent(out)
	for {
		select {
		case g := <-le.grants:
			// This grant was queued but never accepted: its full budget
			// is intact. Answering with the in-flight grant's residue
			// (often 0 = "to completion") would make Step retry a
			// bounded request as an unbounded one.
			qo := out
			qo.remaining = g.quanta
			g.outcome <- qo
		default:
			close(le.done)
			return
		}
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Draining reports whether Shutdown has begun (readiness probes).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// WriteMetrics renders the server's metrics in Prometheus text format.
func (s *Server) WriteMetrics(w io.Writer) error {
	return obs.WritePrometheus(w, s.reg.Snapshot())
}

// Shutdown drains the server: stop admitting work, unwind every live
// engine at its next boundary (checkpointing it), persist everything,
// and only then return. If ctx expires first, engines are hard-aborted
// via the base context; sessions still persist whatever boundary they
// last delivered. Restarting a server over the same DataDir resumes
// every session exactly where it checkpointed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	var lives []*liveEngine
	all := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
		sess.mu.Lock()
		if sess.live != nil {
			lives = append(lives, sess.live)
		}
		sess.mu.Unlock()
	}
	s.mu.Unlock()
	if already {
		return errors.New("server: already shut down")
	}
	for _, le := range lives {
		le.requestStop()
	}
	var stragglers int
	for _, le := range lives {
		select {
		case <-le.done:
		case <-ctx.Done():
			// Grace expired: abort the engines mid-quantum. They unwind
			// at the next context check with their last boundary intact.
			s.cancel()
			select {
			case <-le.done:
			case <-time.After(2 * time.Second):
				stragglers++
			}
		}
	}
	// Final durability sweep. Engine exits already persisted their
	// sessions; this catches io failures left dirty, never-stepped
	// sessions, and anything mutated since.
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	_ = parallel.ForEach(s.cfg.Workers, len(all), func(i int) error {
		s.persistSession(all[i])
		return nil
	})
	s.cancel()
	if stragglers > 0 {
		return fmt.Errorf("server: %d engines did not unwind before the drain deadline", stragglers)
	}
	return nil
}
