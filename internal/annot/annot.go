// Package annot implements the shared-state dependency graph of Section
// 2.3: a dynamic directed graph G = (V, E) over runtime thread instances
// with a sharing coefficient q ∈ [0,1] on each edge. An edge (ti, tj)
// with weight q declares that, at this point in time, a fraction q of
// thread ti's state is shared with thread tj; the destination tj is
// *dependent* on the source ti (tj's cached state changes when ti runs).
//
// The graph is built at runtime by at_share-style annotations. Edges are
// hints: incomplete or wrong annotations never affect correctness, only
// scheduling quality. No transitivity is assumed, and edges need not be
// bidirectional (the paper's mergesort annotates child→parent only).
package annot

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mem"
)

// CheckAnnotation validates an at_share(from, to, q) call at the API
// boundary, before the hint reaches the graph. A NaN, infinite or
// negative coefficient is a programming error in the annotating
// program — the paper's hints are fractions of shared state — as is a
// self-edge (a thread trivially shares all state with itself; the
// model's case 1 already covers it, so an explicit self-annotation
// indicates a thread-ID mix-up at the call site). q above 1 remains a
// clamp, not an error: over-estimating sharing is a legitimately lazy
// hint. The graph's own Share keeps its silent-clamping behaviour for
// internal callers (inference synthesizes edges from noisy evidence);
// the runtime applies this check only to explicit user annotations.
func CheckAnnotation(from, to mem.ThreadID, q float64) error {
	if math.IsNaN(q) || math.IsInf(q, 0) {
		return fmt.Errorf("annot: at_share(%v, %v) with non-finite coefficient %v", from, to, q)
	}
	if q < 0 {
		return fmt.Errorf("annot: at_share(%v, %v) with negative coefficient %v", from, to, q)
	}
	if from == to {
		return fmt.Errorf("annot: at_share self-edge on thread %v (a thread shares all state with itself; annotate the other thread's ID)", from)
	}
	return nil
}

// Edge is one outgoing dependency: a fraction Q of the source thread's
// state is shared with thread To.
type Edge struct {
	To mem.ThreadID
	Q  float64
}

// Graph is the dependency graph. It is not safe for concurrent use; the
// simulation is sequential. The zero value is not usable — call New.
type Graph struct {
	out   map[mem.ThreadID][]Edge         // adjacency, iteration order = insertion order
	in    map[mem.ThreadID][]mem.ThreadID // reverse index for O(in-degree) removal
	edges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		out: make(map[mem.ThreadID][]Edge),
		in:  make(map[mem.ThreadID][]mem.ThreadID),
	}
}

// Share records that a fraction q of thread from's state is shared with
// thread to — the at_share(from, to, q) annotation. A repeated
// annotation updates the coefficient in place; q = 0 removes the edge
// (an unspecified edge and a zero-weight edge are equivalent, as the
// paper notes G can be viewed as a complete graph with zero weights).
// Self-edges are ignored: a thread trivially shares all state with
// itself and the model's case 1 already covers it. q outside [0,1] is
// clamped — annotations are hints and must never fault the program.
func (g *Graph) Share(from, to mem.ThreadID, q float64) {
	if from == to || !from.Valid() || !to.Valid() {
		return
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	edges := g.out[from]
	for i := range edges {
		if edges[i].To == to {
			if q == 0 {
				g.removeEdge(from, i)
			} else {
				edges[i].Q = q
			}
			return
		}
	}
	if q == 0 {
		return
	}
	g.out[from] = append(edges, Edge{To: to, Q: q})
	g.in[to] = append(g.in[to], from)
	g.edges++
}

func (g *Graph) removeEdge(from mem.ThreadID, i int) {
	edges := g.out[from]
	to := edges[i].To
	g.out[from] = append(edges[:i], edges[i+1:]...)
	if len(g.out[from]) == 0 {
		delete(g.out, from)
	}
	ins := g.in[to]
	for j, src := range ins {
		if src == from {
			g.in[to] = append(ins[:j], ins[j+1:]...)
			break
		}
	}
	if len(g.in[to]) == 0 {
		delete(g.in, to)
	}
	g.edges--
}

// Coefficient returns the weight of edge (from, to), or 0 when absent.
func (g *Graph) Coefficient(from, to mem.ThreadID) float64 {
	for _, e := range g.out[from] {
		if e.To == to {
			return e.Q
		}
	}
	return 0
}

// OutEdges returns the outgoing edges of tid — the threads dependent on
// tid, which a context switch by tid must update. The returned slice is
// the graph's own storage; callers must not retain or mutate it. Its
// length is the out-degree d that bounds the per-switch update cost.
func (g *Graph) OutEdges(tid mem.ThreadID) []Edge { return g.out[tid] }

// OutDegree returns the number of threads dependent on tid.
func (g *Graph) OutDegree(tid mem.ThreadID) int { return len(g.out[tid]) }

// Edges returns the total number of edges in the graph.
func (g *Graph) Edges() int { return g.edges }

// RemoveThread deletes tid and every edge incident to it, in time
// proportional to its degree. The runtime calls this when a thread
// exits, after the final footprint update has credited its dependents.
func (g *Graph) RemoveThread(tid mem.ThreadID) {
	// Outgoing edges.
	for _, e := range g.out[tid] {
		ins := g.in[e.To]
		for j, src := range ins {
			if src == tid {
				g.in[e.To] = append(ins[:j], ins[j+1:]...)
				break
			}
		}
		if len(g.in[e.To]) == 0 {
			delete(g.in, e.To)
		}
		g.edges--
	}
	delete(g.out, tid)
	// Incoming edges.
	for _, src := range g.in[tid] {
		edges := g.out[src]
		for i := range edges {
			if edges[i].To == tid {
				g.out[src] = append(edges[:i], edges[i+1:]...)
				g.edges--
				break
			}
		}
		if len(g.out[src]) == 0 {
			delete(g.out, src)
		}
	}
	delete(g.in, tid)
}

// FlatEdge is one (from, to, q) triple of the Export listing.
type FlatEdge struct {
	From, To mem.ThreadID
	Q        float64
}

// Export returns every edge sorted by (From, To) — a canonical listing
// for checkpoints. Note the sort deliberately ignores insertion order;
// two identical runs insert edges in the same order, so comparing
// sorted listings of their graphs is exact.
func (g *Graph) Export() []FlatEdge {
	out := make([]FlatEdge, 0, g.edges)
	for from, edges := range g.out {
		for _, e := range edges {
			out = append(out, FlatEdge{From: from, To: e.To, Q: e.Q})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Check verifies internal consistency (forward and reverse indices
// agree, coefficients in range, edge count correct); it is used by
// property tests and returns a descriptive error on violation.
func (g *Graph) Check() error {
	count := 0
	for from, edges := range g.out {
		seen := make(map[mem.ThreadID]bool, len(edges))
		for _, e := range edges {
			count++
			if e.Q <= 0 || e.Q > 1 {
				return fmt.Errorf("annot: edge (%v,%v) coefficient %v outside (0,1]", from, e.To, e.Q)
			}
			if seen[e.To] {
				return fmt.Errorf("annot: duplicate edge (%v,%v)", from, e.To)
			}
			seen[e.To] = true
			found := false
			for _, src := range g.in[e.To] {
				if src == from {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("annot: edge (%v,%v) missing from reverse index", from, e.To)
			}
		}
	}
	if count != g.edges {
		return fmt.Errorf("annot: edge count %d, counted %d", g.edges, count)
	}
	for to, srcs := range g.in {
		for _, src := range srcs {
			if g.Coefficient(src, to) == 0 {
				return fmt.Errorf("annot: reverse entry (%v,%v) without forward edge", src, to)
			}
		}
	}
	return nil
}
