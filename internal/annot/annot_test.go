package annot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestShareAndCoefficient(t *testing.T) {
	g := New()
	g.Share(1, 2, 0.5)
	if got := g.Coefficient(1, 2); got != 0.5 {
		t.Errorf("Coefficient(1,2) = %v", got)
	}
	if got := g.Coefficient(2, 1); got != 0 {
		t.Error("edges must not be implicitly bidirectional")
	}
	// Update in place.
	g.Share(1, 2, 0.75)
	if got := g.Coefficient(1, 2); got != 0.75 {
		t.Errorf("updated coefficient = %v", got)
	}
	if g.Edges() != 1 {
		t.Errorf("Edges = %d, want 1", g.Edges())
	}
}

func TestZeroCoefficientRemovesEdge(t *testing.T) {
	g := New()
	g.Share(1, 2, 0.5)
	g.Share(1, 2, 0)
	if g.Edges() != 0 || g.Coefficient(1, 2) != 0 {
		t.Error("zero-weight edge not removed")
	}
	// Sharing 0 on a missing edge is a no-op.
	g.Share(3, 4, 0)
	if g.Edges() != 0 {
		t.Error("zero share created an edge")
	}
	if err := g.Check(); err != nil {
		t.Error(err)
	}
}

func TestClamping(t *testing.T) {
	g := New()
	g.Share(1, 2, 1.5)
	if got := g.Coefficient(1, 2); got != 1 {
		t.Errorf("over-one coefficient = %v, want clamp to 1", got)
	}
	g.Share(1, 3, -0.5)
	if g.Coefficient(1, 3) != 0 || g.Edges() != 1 {
		t.Error("negative coefficient should clamp to 0 (no edge)")
	}
}

func TestSelfAndInvalidEdgesIgnored(t *testing.T) {
	g := New()
	g.Share(1, 1, 0.5)
	g.Share(mem.NilThread, 2, 0.5)
	g.Share(2, mem.SchedThread, 0.5)
	if g.Edges() != 0 {
		t.Errorf("invalid edges accepted: %d", g.Edges())
	}
}

func TestOutEdgesAndDegree(t *testing.T) {
	g := New()
	g.Share(1, 2, 0.3)
	g.Share(1, 3, 0.6)
	g.Share(4, 1, 0.9)
	if g.OutDegree(1) != 2 {
		t.Errorf("OutDegree(1) = %d", g.OutDegree(1))
	}
	edges := g.OutEdges(1)
	if len(edges) != 2 || edges[0].To != 2 || edges[1].To != 3 {
		t.Errorf("OutEdges(1) = %v (insertion order expected)", edges)
	}
	if g.OutDegree(2) != 0 {
		t.Error("OutDegree of a sink should be 0")
	}
}

func TestRemoveThread(t *testing.T) {
	g := New()
	// A small mergesort-like pattern: children 2,3 share fully with
	// parent 1; parent shares partially with both.
	g.Share(2, 1, 1.0)
	g.Share(3, 1, 1.0)
	g.Share(1, 2, 0.4)
	g.Share(1, 3, 0.4)
	g.Share(2, 3, 0.2)
	if g.Edges() != 5 {
		t.Fatalf("Edges = %d", g.Edges())
	}
	g.RemoveThread(1)
	if g.Edges() != 1 {
		t.Errorf("after removing hub: %d edges, want 1", g.Edges())
	}
	if g.Coefficient(2, 3) != 0.2 {
		t.Error("unrelated edge lost")
	}
	if g.Coefficient(2, 1) != 0 || g.Coefficient(1, 2) != 0 {
		t.Error("edges of removed thread survive")
	}
	if err := g.Check(); err != nil {
		t.Error(err)
	}
	// Removing an absent thread is harmless.
	g.RemoveThread(99)
	if err := g.Check(); err != nil {
		t.Error(err)
	}
}

// TestRandomOpsKeepInvariants drives the graph with random share/remove
// operations and verifies internal consistency throughout.
func TestRandomOpsKeepInvariants(t *testing.T) {
	f := func(ops []struct {
		From, To uint8
		Q        uint8
		Remove   bool
	}) bool {
		g := New()
		for _, op := range ops {
			from := mem.ThreadID(op.From % 16)
			to := mem.ThreadID(op.To % 16)
			if op.Remove {
				g.RemoveThread(from)
			} else {
				g.Share(from, to, float64(op.Q)/255)
			}
			if err := g.Check(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergesortAnnotationExample(t *testing.T) {
	// The paper's Section 2.3 example: children's state fully contained
	// in the parent's.
	g := New()
	parent, left, right := mem.ThreadID(0), mem.ThreadID(1), mem.ThreadID(2)
	g.Share(left, parent, 1.0)
	g.Share(right, parent, 1.0)
	if g.OutDegree(left) != 1 || g.Coefficient(left, parent) != 1 {
		t.Error("child→parent edge wrong")
	}
	// The parent prefetches nothing for the children: no reverse edges.
	if g.OutDegree(parent) != 0 {
		t.Error("parent should have no out-edges in the example")
	}
}

func TestCheckAnnotation(t *testing.T) {
	cases := []struct {
		from, to mem.ThreadID
		q        float64
		wantErr  string // substring, "" = valid
	}{
		{1, 2, 0.5, ""},
		{1, 2, 0, ""},
		{1, 2, 1.5, ""}, // over-estimate: clamped later, not an error
		{1, 2, math.NaN(), "non-finite"},
		{1, 2, math.Inf(1), "non-finite"},
		{1, 2, math.Inf(-1), "non-finite"},
		{1, 2, -0.25, "negative"},
		{3, 3, 0.5, "self-edge"},
	}
	for _, c := range cases {
		err := CheckAnnotation(c.from, c.to, c.q)
		switch {
		case c.wantErr == "" && err != nil:
			t.Errorf("CheckAnnotation(%v, %v, %v) = %v, want nil", c.from, c.to, c.q, err)
		case c.wantErr != "" && (err == nil || !strings.Contains(err.Error(), c.wantErr)):
			t.Errorf("CheckAnnotation(%v, %v, %v) = %v, want error containing %q", c.from, c.to, c.q, err, c.wantErr)
		}
	}
}

func TestExportSortedAndComplete(t *testing.T) {
	g := New()
	g.Share(5, 1, 0.5)
	g.Share(2, 9, 0.25)
	g.Share(2, 3, 0.125)
	g.Share(5, 0, 1)
	flat := g.Export()
	want := []FlatEdge{{2, 3, 0.125}, {2, 9, 0.25}, {5, 0, 1}, {5, 1, 0.5}}
	if len(flat) != len(want) {
		t.Fatalf("Export = %v, want %v", flat, want)
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("Export[%d] = %v, want %v", i, flat[i], want[i])
		}
	}
}
