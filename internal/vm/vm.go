// Package vm implements the virtual-to-physical address translation used
// by the cache simulator. The paper's simulator feeds virtual addresses
// (from Shade) through a page mapper into physically indexed caches and
// uses a variant of Kessler and Hill's "careful mapping" page-placement
// policy, which picks a physical frame at page-fault time whose cache
// color is likely to reduce conflict misses.
//
// A Mapper allocates frames on first touch (a simulated page fault) and
// then translates deterministically. Three policies are provided:
//
//   - Identity: physical == virtual (useful in unit tests).
//   - Naive: arbitrary (pseudo-random) frame color, the baseline Kessler
//     and Hill compare against.
//   - Careful: page coloring with bin hopping — prefer the frame color
//     equal to the virtual page color, but fall back to the least-used
//     color when the preferred one is already crowded, balancing pages
//     across cache bins.
package vm

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/xrand"
)

// Policy selects the frame-allocation strategy.
type Policy int

// Supported page-placement policies.
const (
	// Identity maps every virtual page to the equal-numbered frame.
	Identity Policy = iota
	// Naive assigns an arbitrary (pseudo-random) color to each frame,
	// modelling a VM system that ignores cache geometry.
	Naive
	// Careful implements the Kessler-Hill careful-mapping heuristic:
	// color frames like their virtual pages unless that bin is
	// overloaded, then hop to the least-used bin.
	Careful
)

func (p Policy) String() string {
	switch p {
	case Identity:
		return "identity"
	case Naive:
		return "naive"
	case Careful:
		return "careful"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Mapper translates virtual addresses to physical addresses, allocating
// physical frames on first touch. It is not safe for concurrent use; the
// simulator is sequential by design.
type Mapper struct {
	policy    Policy
	pageSize  uint64
	pageShift uint

	// colors is the number of page-sized bins in the physically
	// indexed cache the mapping tries to optimize for (cache bytes /
	// page size). With one color the policy degenerates gracefully.
	colors uint64

	table      map[uint64]uint64 // virtual page -> physical frame
	colorUse   []uint64          // frames allocated per color
	colorNext  []uint64          // next frame ordinal within each color
	nextFrame  uint64            // for Identity fallback bookkeeping
	rng        *xrand.Source
	faultCount uint64
}

// New returns a Mapper for the given page size (a power of two) and the
// cache capacity in bytes that coloring should target. The seed fixes
// the Naive policy's arbitrary placements.
func New(policy Policy, pageSize, cacheBytes uint64, seed uint64) *Mapper {
	if !mem.IsPow2(pageSize) {
		// Invariant: callers pass machine.Config geometry, validated upstream.
		panic(fmt.Sprintf("vm: page size %d is not a power of two", pageSize))
	}
	colors := cacheBytes / pageSize
	if colors == 0 {
		colors = 1
	}
	return &Mapper{
		policy:    policy,
		pageSize:  pageSize,
		pageShift: mem.Log2(pageSize),
		colors:    colors,
		table:     make(map[uint64]uint64),
		colorUse:  make([]uint64, colors),
		colorNext: make([]uint64, colors),
		rng:       xrand.New(seed),
	}
}

// PageSize returns the mapper's page size in bytes.
func (m *Mapper) PageSize() uint64 { return m.pageSize }

// Colors returns the number of cache colors the mapper balances across.
func (m *Mapper) Colors() int { return int(m.colors) }

// Faults returns the number of page faults taken so far (pages
// allocated on first touch).
func (m *Mapper) Faults() uint64 { return m.faultCount }

// MappedPages returns the number of resident pages.
func (m *Mapper) MappedPages() int { return len(m.table) }

// Translate maps a virtual address to its physical address, faulting the
// page in if this is its first touch.
func (m *Mapper) Translate(v mem.Addr) mem.Addr {
	vpage := uint64(v) >> m.pageShift
	frame, ok := m.table[vpage]
	if !ok {
		frame = m.allocate(vpage)
		m.table[vpage] = frame
		m.faultCount++
	}
	offset := uint64(v) & (m.pageSize - 1)
	return mem.Addr(frame<<m.pageShift | offset)
}

// TranslateRange translates the start of a range; callers that need
// per-page precision must translate page by page (the cache simulator
// does so when a run crosses a page boundary).
func (m *Mapper) TranslateRange(r mem.Range) mem.Range {
	return mem.Range{Base: m.Translate(r.Base), Len: r.Len}
}

func (m *Mapper) allocate(vpage uint64) uint64 {
	switch m.policy {
	case Identity:
		m.nextFrame++
		return vpage
	case Naive:
		color := m.rng.Uint64n(m.colors)
		return m.frameInColor(color)
	case Careful:
		return m.frameInColor(m.chooseColor(vpage))
	default:
		// Invariant: the Policy enum is closed.
		panic(fmt.Sprintf("vm: unknown policy %d", int(m.policy)))
	}
}

// chooseColor implements the careful-mapping heuristic: use the virtual
// page's color when it is no fuller than the emptiest bin; otherwise hop
// to the least-used bin (lowest index on ties, for determinism).
func (m *Mapper) chooseColor(vpage uint64) uint64 {
	want := vpage % m.colors
	minUse := m.colorUse[0]
	minColor := uint64(0)
	for c, use := range m.colorUse {
		if use < minUse {
			minUse = use
			minColor = uint64(c)
		}
	}
	if m.colorUse[want] == minUse {
		return want
	}
	return minColor
}

// frameInColor returns a fresh frame number whose low bits (mod colors)
// equal the requested color. Physical memory is unbounded in the
// simulation, so frames are synthesized as color + colors*ordinal.
func (m *Mapper) frameInColor(color uint64) uint64 {
	ordinal := m.colorNext[color]
	m.colorNext[color]++
	m.colorUse[color]++
	return color + m.colors*ordinal
}
