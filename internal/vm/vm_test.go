package vm

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

const (
	testPage  = 8192
	testCache = 512 * 1024
)

func TestIdentity(t *testing.T) {
	m := New(Identity, testPage, testCache, 1)
	for _, a := range []mem.Addr{0, 1, 8191, 8192, 1 << 30} {
		if got := m.Translate(a); got != a {
			t.Errorf("Identity Translate(%#x) = %#x", uint64(a), uint64(got))
		}
	}
}

func TestTranslationStable(t *testing.T) {
	for _, policy := range []Policy{Identity, Naive, Careful} {
		m := New(policy, testPage, testCache, 7)
		addrs := []mem.Addr{0x1000, 0x2000, 0x123456, 0x9000000}
		first := make([]mem.Addr, len(addrs))
		for i, a := range addrs {
			first[i] = m.Translate(a)
		}
		for i, a := range addrs {
			if got := m.Translate(a); got != first[i] {
				t.Errorf("%v: Translate(%#x) changed %#x -> %#x", policy, uint64(a), uint64(first[i]), uint64(got))
			}
		}
	}
}

func TestOffsetPreserved(t *testing.T) {
	f := func(page uint16, offset uint16) bool {
		m := New(Careful, testPage, testCache, 3)
		v := mem.Addr(uint64(page)*testPage + uint64(offset)%testPage)
		p := m.Translate(v)
		return uint64(p)%testPage == uint64(v)%testPage
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistinctPagesGetDistinctFrames(t *testing.T) {
	for _, policy := range []Policy{Naive, Careful} {
		m := New(policy, testPage, testCache, 11)
		seen := make(map[mem.Addr]uint64)
		for vp := uint64(0); vp < 10000; vp++ {
			p := m.Translate(mem.Addr(vp * testPage))
			frame := p / testPage * testPage
			if prev, dup := seen[frame]; dup {
				t.Fatalf("%v: vpages %d and %d share frame %#x", policy, prev, vp, uint64(frame))
			}
			seen[frame] = vp
		}
	}
}

func TestCarefulBalancesColors(t *testing.T) {
	m := New(Careful, testPage, testCache, 5)
	colors := uint64(m.Colors())
	// Touch many pages with a pathological virtual stride that keeps
	// the virtual color constant; careful mapping must still spread the
	// frames across bins.
	use := make(map[uint64]int)
	const pages = 4096
	for i := uint64(0); i < pages; i++ {
		v := mem.Addr(i * testPage * colors) // all same virtual color
		p := m.Translate(v)
		use[uint64(p)/testPage%colors]++
	}
	min, max := pages, 0
	for c := uint64(0); c < colors; c++ {
		if use[c] < min {
			min = use[c]
		}
		if use[c] > max {
			max = use[c]
		}
	}
	if max-min > 1 {
		t.Errorf("careful mapping imbalance: min %d max %d across %d colors", min, max, colors)
	}
}

func TestCarefulPrefersVirtualColor(t *testing.T) {
	m := New(Careful, testPage, testCache, 5)
	colors := uint64(m.Colors())
	// With one page per virtual color, each should land on its own
	// color (pure page coloring).
	for i := uint64(0); i < colors; i++ {
		p := m.Translate(mem.Addr(i * testPage))
		if got := uint64(p) / testPage % colors; got != i {
			t.Errorf("vpage %d placed on color %d", i, got)
		}
	}
}

func TestFaultAccounting(t *testing.T) {
	m := New(Careful, testPage, testCache, 9)
	m.Translate(0x0)
	m.Translate(0x10)   // same page
	m.Translate(0x2000) // new page
	if m.Faults() != 2 || m.MappedPages() != 2 {
		t.Errorf("faults %d mapped %d, want 2/2", m.Faults(), m.MappedPages())
	}
}

func TestNaiveDeterministicBySeed(t *testing.T) {
	a := New(Naive, testPage, testCache, 42)
	b := New(Naive, testPage, testCache, 42)
	for vp := uint64(0); vp < 1000; vp++ {
		va := mem.Addr(vp * testPage)
		if a.Translate(va) != b.Translate(va) {
			t.Fatalf("same-seed naive mappers diverged at page %d", vp)
		}
	}
}

func TestBadPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-power-of-two page size")
		}
	}()
	New(Careful, 1000, testCache, 1)
}

func TestPolicyString(t *testing.T) {
	if Identity.String() != "identity" || Naive.String() != "naive" || Careful.String() != "careful" {
		t.Error("policy names wrong")
	}
	if Policy(99).String() != "Policy(99)" {
		t.Error("unknown policy name wrong")
	}
}
