// Package platform is the seam between the locality runtime and
// whatever substrate it runs on. The paper's central observation is
// that the footprint model and the LFF/CRT schedulers need only two
// inputs — per-CPU external-cache miss counts across a scheduling
// interval and the state-sharing graph — so the runtime (internal/rt),
// the scheduling framework (internal/sched) and the model
// (internal/model) are written against the small interfaces here and
// never against a concrete machine.
//
// Two backends implement Platform today:
//
//   - platform/sim adapts the deterministic simulated SMP of
//     internal/machine + internal/perfctr (the paper's evaluation
//     substrate);
//   - platform/replay replays a recorded dispatch/miss trace
//     (internal/trace.Recording), so the model and policies can be
//     evaluated against captured runs with no simulator in the loop.
//
// A future hardware backend (perf_event counters on a real SMP) slots
// in the same way: implement CPU's clock and counter reads and the
// memory hooks, and the whole scheduling stack comes along.
package platform

import "repro/internal/mem"

// CounterSnapshot is a point-in-time reading of the two 32-bit
// performance instrumentation counters the runtime samples at every
// context switch: external-cache references and external-cache hits.
// The counters wrap silently at 2^32, exactly as the UltraSPARC PICs
// do; interval arithmetic must therefore be modular (see MissesSince).
type CounterSnapshot struct {
	// Refs is the wrapped E-cache reference count (PIC0).
	Refs uint32
	// Hits is the wrapped E-cache hit count (PIC1).
	Hits uint32
}

// MissesSince derives the number of E-cache misses between prev and cur
// readings of the same CPU's counters. The subtraction is modular
// 32-bit arithmetic, so it is correct across counter wraparound for any
// interval shorter than 2^32 events — which every scheduling interval
// is. Intervals of 2^32 events or more alias (the counters cannot
// distinguish n from n + 2^32); backends with wider counters should
// expose them through CounterSource.Misses instead.
func MissesSince(cur, prev CounterSnapshot) uint64 {
	refs := uint64(cur.Refs - prev.Refs)
	hits := uint64(cur.Hits - prev.Hits)
	if hits > refs {
		// Possible only if the counters were reprogrammed or reset
		// mid-interval; clamp rather than underflow.
		return 0
	}
	return refs - hits
}

// Clock is one processor's cycle clock.
type Clock interface {
	// Cycles returns the processor's current cycle count.
	Cycles() uint64
	// SetCycles moves the clock forward to at least v. The runtime uses
	// it to jump idle processors to the present when work appears; a
	// backend may ignore attempts to move the clock backward.
	SetCycles(v uint64)
}

// CounterSource is one processor's miss-count instrumentation.
type CounterSource interface {
	// ReadCounters samples the wrapped 32-bit counter pair (the
	// user-level PIC read the paper gets "for free").
	ReadCounters() CounterSnapshot
	// Misses returns the processor's cumulative E-cache miss count
	// m(t) on a non-wrapping 64-bit scale. It must be monotonic; the
	// scheduler's footprint decay is driven from it.
	Misses() uint64
}

// CPU is one processor as the runtime sees it: a clock and a counter
// source.
type CPU interface {
	Clock
	CounterSource
}

// Alloc reserves simulated (or recorded) address space.
type Alloc interface {
	// Alloc reserves size bytes aligned to align (a power of two;
	// 0 means cache-line alignment) and returns the range. Allocations
	// are eternal, mirroring the paper's measurement windows.
	Alloc(size, align uint64) mem.Range
}

// MissCounter reports a processor's cumulative 64-bit E-cache miss
// count. It is the single closure internal/sched consumes; wire it with
// MissCounterOf.
type MissCounter func(cpu int) uint64

// Platform is everything the locality runtime needs from a substrate:
// processors (clocks + counters), the cache geometry the model is built
// for, an allocator, and the memory-activity entry points threads drive.
type Platform interface {
	Alloc

	// NCPU returns the processor count.
	NCPU() int
	// CPU returns processor i. Implementations must return the same
	// handle for the same i every call (the runtime caches them).
	CPU(i int) CPU

	// CacheLines is the per-CPU external cache size in lines — the N of
	// the footprint model.
	CacheLines() int
	// LineBytes is the external cache line size in bytes.
	LineBytes() uint64
	// PageBytes is the virtual-memory page size (the granularity of the
	// sharing-inference monitor).
	PageBytes() uint64
	// SharedLLC reports whether the CPUs share one last-level cache
	// (cachesim.Topology.Shared). The runtime engages the scheduler's
	// machine-wide miss clock and the shared-cache footprint forms only
	// when both the platform shares its LLC and the policy implements
	// model.SharedScheme; on a private hierarchy a shared-aware policy
	// degrades to its embedded base scheme.
	SharedLLC() bool

	// Apply performs a batch of data references by thread tid on the
	// given CPU and returns the number of E-cache misses it took.
	Apply(cpu int, tid mem.ThreadID, batch mem.Batch) uint64
	// Advance charges instrs instructions of pure compute to a CPU.
	Advance(cpu int, instrs uint64)
	// AdvanceCycles charges cycles (no instructions) to a CPU —
	// scheduler bookkeeping, context-switch latency.
	AdvanceCycles(cpu int, cycles uint64)
	// TouchCode simulates the instruction-fetch side of dispatching
	// thread tid: its code region is reloaded through the cache.
	TouchCode(cpu int, tid mem.ThreadID, code mem.Range)
	// SetMissHook installs an observer of every data-cache miss with
	// the accessing thread and virtual address (the sharing-inference
	// feed). fn must be O(1); nil clears the hook. Backends without
	// per-miss visibility may ignore it.
	SetMissHook(fn func(tid mem.ThreadID, va mem.Addr))
}

// MissCounterOf adapts a Platform's per-CPU 64-bit miss counters to the
// MissCounter closure internal/sched consumes.
func MissCounterOf(p Platform) MissCounter {
	cpus := make([]CPU, p.NCPU())
	for i := range cpus {
		cpus[i] = p.CPU(i)
	}
	return func(cpu int) uint64 { return cpus[cpu].Misses() }
}
