package platform

import "testing"

func TestMissesSinceBasic(t *testing.T) {
	prev := CounterSnapshot{Refs: 1000, Hits: 900}
	cur := CounterSnapshot{Refs: 1500, Hits: 1300}
	if got := MissesSince(cur, prev); got != 100 {
		t.Errorf("MissesSince = %d, want 100", got)
	}
}

func TestMissesSinceExactWrapBoundary(t *testing.T) {
	// The refs counter sits at 2^32-1 and the next event wraps it to 0:
	// the interval still counts exactly one miss.
	prev := CounterSnapshot{Refs: 1<<32 - 1, Hits: 0}
	cur := CounterSnapshot{Refs: 0, Hits: 0}
	if got := MissesSince(cur, prev); got != 1 {
		t.Errorf("misses across exact wrap = %d, want 1", got)
	}
	if got := MissesSince(prev, prev); got != 0 {
		t.Errorf("empty interval at boundary = %d, want 0", got)
	}
}

func TestMissesSinceBothWrap(t *testing.T) {
	prev := CounterSnapshot{Refs: 1<<32 - 10, Hits: 1<<32 - 3}
	cur := CounterSnapshot{Refs: prev.Refs + 50, Hits: prev.Hits + 20}
	if got := MissesSince(cur, prev); got != 30 {
		t.Errorf("misses with both counters wrapping = %d, want 30", got)
	}
}

func TestMissesSinceClampsHitsOverRefs(t *testing.T) {
	// A mid-interval PCR reprogram can make hits exceed refs; the delta
	// must clamp to zero, never underflow.
	prev := CounterSnapshot{}
	cur := CounterSnapshot{Refs: 5, Hits: 9}
	if got := MissesSince(cur, prev); got != 0 {
		t.Errorf("clamped misses = %d, want 0", got)
	}
}
