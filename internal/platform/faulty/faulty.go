// Package faulty is the third platform backend: a deterministic,
// seedable fault-injection wrapper over any platform.Platform. The
// substrate underneath stays healthy — memory operations, allocation
// and the miss hook pass through untouched — but the *instrumentation*
// lies, the way real hardware instrumentation lies: counters wrap at
// arbitrary widths, stall frozen, get multiplexed away for whole
// intervals, jump by huge deltas, and per-CPU clocks skew. The runtime
// must survive all of it; the sanitizer and quarantine machinery in
// internal/rt exist because of exactly these failure modes, and this
// backend is how they are tested reproducibly.
//
// Every fault is a pure function of the wrapped counter's own value and
// the configured schedule (per-CPU phases derived from the seed), never
// of wall time or call count. Two runs with the same workload, seed and
// configuration therefore inject byte-identical fault sequences, no
// matter how often the runtime happens to read the counters — the
// fault-matrix tests rely on this, and it is what makes failures
// reproducible enough to debug.
//
// With the zero Config no transform is active and the wrapper is
// bit-transparent: a run through faulty.New(inner, Config{}) is
// event-for-event identical to a run on inner directly (pinned by the
// zero-fault differential test).
package faulty

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/xrand"
)

// Config is the injection schedule. Each fault class is independent and
// disabled at its zero value; any combination may be active at once.
// All windows are expressed on the corrupted counter's own scale (reads
// per reads, cycles per cycles), so the schedule is reproducible
// regardless of how often the counters are sampled.
type Config struct {
	// Seed derives the per-CPU phase offsets that keep processors'
	// fault windows out of lockstep. The same seed always produces the
	// same schedule.
	Seed uint64

	// WrapBits, when nonzero, narrows every counter to WrapBits bits:
	// the PIC pair and the 64-bit miss shadow wrap at 2^WrapBits
	// instead of their native widths (4 <= WrapBits <= 31). Interval
	// arithmetic that assumed 32-bit modular behaviour sees huge
	// bogus deltas whenever a wrap lands inside an interval.
	WrapBits uint

	// StuckEvery/StuckLen freeze counters: whenever a counter's value
	// (plus the CPU's phase) falls in [k·StuckEvery, k·StuckEvery +
	// StuckLen), reads return the window's start value — the counter
	// appears stalled while the machine runs on.
	StuckEvery uint64
	StuckLen   uint64

	// DropEvery/DropLen simulate counter multiplexing: in each window
	// of DropLen counts out of every DropEvery, reads return 0 — the
	// counter was reprogrammed away and there is no data.
	DropEvery uint64
	DropLen   uint64

	// SpikeEvery/SpikeDelta corrupt reads with jumps: every SpikeEvery
	// counts, the reported reference count permanently gains
	// SpikeDelta — a burst of phantom events, as a corrupted read or a
	// shared counter bleeding in from another context would produce.
	SpikeEvery uint64
	SpikeDelta uint64

	// SkewCycles skews the per-CPU clocks: processor i reports its
	// cycle count offset by i × SkewCycles, so cross-CPU timestamps
	// disagree the way unsynchronized TSCs do.
	SkewCycles uint64
}

// Enabled reports whether any fault class is configured.
func (c Config) Enabled() bool {
	return c.WrapBits != 0 || c.StuckEvery != 0 || c.DropEvery != 0 ||
		c.SpikeEvery != 0 || c.SkewCycles != 0
}

// Validate rejects schedules that cannot be injected.
func (c Config) Validate() error {
	if c.WrapBits != 0 && (c.WrapBits < 4 || c.WrapBits > 31) {
		return fmt.Errorf("faulty: wrap width %d bits (want 4..31)", c.WrapBits)
	}
	if c.StuckEvery != 0 && c.StuckLen >= c.StuckEvery {
		return fmt.Errorf("faulty: stuck window %d >= period %d", c.StuckLen, c.StuckEvery)
	}
	if c.StuckEvery == 0 && c.StuckLen != 0 {
		return fmt.Errorf("faulty: stuck window %d without a period", c.StuckLen)
	}
	if c.DropEvery != 0 && c.DropLen >= c.DropEvery {
		return fmt.Errorf("faulty: dropout window %d >= period %d", c.DropLen, c.DropEvery)
	}
	if c.DropEvery == 0 && c.DropLen != 0 {
		return fmt.Errorf("faulty: dropout window %d without a period", c.DropLen)
	}
	if c.SpikeEvery == 0 && c.SpikeDelta != 0 {
		return fmt.Errorf("faulty: spike delta %d without a period", c.SpikeDelta)
	}
	return nil
}

// Platform wraps an inner platform.Platform, corrupting its counter and
// clock reads per the Config. Everything else forwards unchanged.
type Platform struct {
	inner platform.Platform
	cfg   Config
	cpus  []platform.CPU
}

// New wraps inner with the given injection schedule.
func New(inner platform.Platform, cfg Config) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Platform{inner: inner, cfg: cfg}
	for i := 0; i < inner.NCPU(); i++ {
		p.cpus = append(p.cpus, newCPU(inner.CPU(i), cfg, i))
	}
	return p, nil
}

// Inner returns the wrapped platform.
func (p *Platform) Inner() platform.Platform { return p.inner }

// Config returns the injection schedule.
func (p *Platform) Config() Config { return p.cfg }

// NCPU implements platform.Platform.
func (p *Platform) NCPU() int { return p.inner.NCPU() }

// CPU implements platform.Platform.
func (p *Platform) CPU(i int) platform.CPU { return p.cpus[i] }

// CacheLines implements platform.Platform.
func (p *Platform) CacheLines() int { return p.inner.CacheLines() }

// LineBytes implements platform.Platform.
func (p *Platform) LineBytes() uint64 { return p.inner.LineBytes() }

// PageBytes implements platform.Platform.
func (p *Platform) PageBytes() uint64 { return p.inner.PageBytes() }

// SharedLLC implements platform.Platform (pass-through).
func (p *Platform) SharedLLC() bool { return p.inner.SharedLLC() }

// Alloc implements platform.Alloc (pass-through: the memory system is
// healthy, only the instrumentation lies).
func (p *Platform) Alloc(size, align uint64) mem.Range { return p.inner.Alloc(size, align) }

// Apply implements platform.Platform (pass-through).
func (p *Platform) Apply(cpu int, tid mem.ThreadID, batch mem.Batch) uint64 {
	return p.inner.Apply(cpu, tid, batch)
}

// Advance implements platform.Platform (pass-through).
func (p *Platform) Advance(cpu int, instrs uint64) { p.inner.Advance(cpu, instrs) }

// AdvanceCycles implements platform.Platform (pass-through).
func (p *Platform) AdvanceCycles(cpu int, cycles uint64) { p.inner.AdvanceCycles(cpu, cycles) }

// TouchCode implements platform.Platform (pass-through).
func (p *Platform) TouchCode(cpu int, tid mem.ThreadID, code mem.Range) {
	p.inner.TouchCode(cpu, tid, code)
}

// SetMissHook implements platform.Platform (pass-through).
func (p *Platform) SetMissHook(fn func(tid mem.ThreadID, va mem.Addr)) {
	p.inner.SetMissHook(fn)
}

// cpu is one processor with lying instrumentation.
type cpu struct {
	inner platform.CPU
	cfg   Config

	// wrapMask narrows counters when WrapBits is set (0 = off).
	wrapMask uint64
	// skew is this CPU's constant clock offset.
	skew uint64
	// stuckPhase/dropPhase/spikePhase shift each class's windows so
	// CPUs fault at different points of their counters' ranges.
	stuckPhase uint64
	dropPhase  uint64
	spikePhase uint64
}

// newCPU derives the per-CPU schedule from the seed.
func newCPU(inner platform.CPU, cfg Config, idx int) *cpu {
	c := &cpu{inner: inner, cfg: cfg}
	if cfg.WrapBits != 0 {
		c.wrapMask = 1<<cfg.WrapBits - 1
	}
	c.skew = uint64(idx) * cfg.SkewCycles
	rng := xrand.New(cfg.Seed ^ (0xfa171e * (uint64(idx) + 1)))
	if cfg.StuckEvery != 0 {
		c.stuckPhase = rng.Uint64n(cfg.StuckEvery)
	}
	if cfg.DropEvery != 0 {
		c.dropPhase = rng.Uint64n(cfg.DropEvery)
	}
	if cfg.SpikeEvery != 0 {
		c.spikePhase = rng.Uint64n(cfg.SpikeEvery)
	}
	return c
}

// corrupt applies the value-domain fault classes to one cumulative
// counter reading v. Window positions are decided on the true value, so
// the transform is a pure function of v.
func (c *cpu) corrupt(v uint64, spike bool) uint64 {
	out := v
	if spike && c.cfg.SpikeEvery != 0 {
		out += ((v + c.spikePhase) / c.cfg.SpikeEvery) * c.cfg.SpikeDelta
	}
	if c.cfg.StuckEvery != 0 {
		if ph := (v + c.stuckPhase) % c.cfg.StuckEvery; ph < c.cfg.StuckLen {
			// Freeze at the window's entry value.
			if ph > out {
				out = 0
			} else {
				out -= ph
			}
		}
	}
	if c.cfg.DropEvery != 0 {
		if (v+c.dropPhase)%c.cfg.DropEvery < c.cfg.DropLen {
			return 0 // multiplexed away: no data
		}
	}
	return out
}

// Cycles implements platform.Clock: the inner clock plus this CPU's
// constant skew.
func (c *cpu) Cycles() uint64 { return c.inner.Cycles() + c.skew }

// SetCycles implements platform.Clock, mapping the skewed target back
// to the inner clock's domain (forward-only, like the inner clock).
func (c *cpu) SetCycles(v uint64) {
	if v <= c.skew {
		return
	}
	c.inner.SetCycles(v - c.skew)
}

// ReadCounters implements platform.CounterSource: the inner PIC pair
// run through the fault transforms. Spikes land on the reference
// counter only (phantom references read as misses); stuck and dropout
// windows are evaluated per counter on its own value, and wrap
// narrowing applies last.
func (c *cpu) ReadCounters() platform.CounterSnapshot {
	s := c.inner.ReadCounters()
	refs := c.corrupt(uint64(s.Refs), true)
	hits := c.corrupt(uint64(s.Hits), false)
	if c.wrapMask != 0 {
		refs &= c.wrapMask
		hits &= c.wrapMask
	}
	return platform.CounterSnapshot{Refs: uint32(refs), Hits: uint32(hits)}
}

// Misses implements platform.CounterSource: the 64-bit shadow count
// run through the same transforms (so even the "trusted" wide counter
// misbehaves — wraps narrow it, stalls freeze it, dropouts zero it,
// spikes jump it). The scheduler's decay discipline must cope.
func (c *cpu) Misses() uint64 {
	v := c.corrupt(c.inner.Misses(), true)
	if c.wrapMask != 0 {
		v &= c.wrapMask
	}
	return v
}
