package faulty

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/platform"
)

var _ platform.Platform = (*Platform)(nil)

// fakePlatform is a settable substrate: tests dial counter and clock
// values directly and observe what the wrapper reports.
type fakePlatform struct {
	ncpu int
	cpus []*fakeCPU
}

type fakeCPU struct {
	refs, hits uint64
	misses     uint64
	cycles     uint64
}

func newFake(ncpu int) *fakePlatform {
	f := &fakePlatform{ncpu: ncpu}
	for i := 0; i < ncpu; i++ {
		f.cpus = append(f.cpus, &fakeCPU{})
	}
	return f
}

func (f *fakePlatform) NCPU() int              { return f.ncpu }
func (f *fakePlatform) CPU(i int) platform.CPU { return f.cpus[i] }
func (f *fakePlatform) CacheLines() int        { return 1024 }
func (f *fakePlatform) LineBytes() uint64      { return 64 }
func (f *fakePlatform) PageBytes() uint64      { return 8192 }
func (f *fakePlatform) SharedLLC() bool        { return false }
func (f *fakePlatform) Alloc(size, align uint64) mem.Range {
	return mem.Range{Base: 0, Len: size}
}
func (f *fakePlatform) Apply(cpu int, tid mem.ThreadID, batch mem.Batch) uint64 { return 0 }
func (f *fakePlatform) Advance(cpu int, instrs uint64)                          {}
func (f *fakePlatform) AdvanceCycles(cpu int, cycles uint64)                    {}
func (f *fakePlatform) TouchCode(cpu int, tid mem.ThreadID, code mem.Range)     {}
func (f *fakePlatform) SetMissHook(fn func(tid mem.ThreadID, va mem.Addr))      {}

func (c *fakeCPU) Cycles() uint64 { return c.cycles }
func (c *fakeCPU) SetCycles(v uint64) {
	if v > c.cycles {
		c.cycles = v
	}
}
func (c *fakeCPU) ReadCounters() platform.CounterSnapshot {
	return platform.CounterSnapshot{Refs: uint32(c.refs), Hits: uint32(c.hits)}
}
func (c *fakeCPU) Misses() uint64 { return c.misses }

func TestZeroConfigIsPassthrough(t *testing.T) {
	inner := newFake(2)
	p, err := New(inner, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Config().Enabled() {
		t.Error("zero config reports Enabled")
	}
	inner.cpus[1].refs = 123456
	inner.cpus[1].hits = 7890
	inner.cpus[1].misses = 115566
	inner.cpus[1].cycles = 999999
	c := p.CPU(1)
	if got := c.ReadCounters(); got != inner.cpus[1].ReadCounters() {
		t.Errorf("counters corrupted with no faults: %+v", got)
	}
	if got := c.Misses(); got != 115566 {
		t.Errorf("Misses = %d, want 115566", got)
	}
	if got := c.Cycles(); got != 999999 {
		t.Errorf("Cycles = %d, want 999999", got)
	}
	c.SetCycles(1000001)
	if inner.cpus[1].cycles != 1000001 {
		t.Errorf("SetCycles did not forward: inner at %d", inner.cpus[1].cycles)
	}
}

func TestWrapNarrowsCounters(t *testing.T) {
	inner := newFake(1)
	p, err := New(inner, Config{WrapBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	inner.cpus[0].refs = 0x1234 // 0x34 after 8-bit wrap
	inner.cpus[0].misses = 0x5678
	s := p.CPU(0).ReadCounters()
	if s.Refs != 0x34 {
		t.Errorf("Refs = %#x, want 0x34", s.Refs)
	}
	if got := p.CPU(0).Misses(); got != 0x78 {
		t.Errorf("Misses = %#x, want 0x78", got)
	}
}

func TestStuckFreezesWindow(t *testing.T) {
	// No seed randomness beyond the phase; scan a range and require at
	// least one maximal run of identical readings of length StuckLen.
	inner := newFake(1)
	p, err := New(inner, Config{StuckEvery: 100, StuckLen: 30})
	if err != nil {
		t.Fatal(err)
	}
	c := p.CPU(0)
	frozen, prev := 0, uint64(0)
	maxRun := 0
	for v := uint64(1); v <= 400; v++ {
		inner.cpus[0].refs = v
		got := uint64(c.ReadCounters().Refs)
		if got == prev {
			frozen++
		} else {
			frozen = 0
		}
		if frozen > maxRun {
			maxRun = frozen
		}
		prev = got
	}
	// 400 values cover four windows; each freezes readings for
	// StuckLen consecutive counts.
	if maxRun < 29 {
		t.Errorf("longest frozen run %d, want >= 29", maxRun)
	}
}

func TestDropoutReadsZero(t *testing.T) {
	inner := newFake(1)
	p, err := New(inner, Config{DropEvery: 100, DropLen: 40})
	if err != nil {
		t.Fatal(err)
	}
	c := p.CPU(0)
	zeros := 0
	for v := uint64(1); v <= 1000; v++ {
		inner.cpus[0].refs = v
		if c.ReadCounters().Refs == 0 {
			zeros++
		}
	}
	// 40% of the counter range is inside a dropout window.
	if zeros < 300 || zeros > 500 {
		t.Errorf("%d/1000 reads dropped, want ~400", zeros)
	}
}

func TestSpikeJumpsRefsOnly(t *testing.T) {
	inner := newFake(1)
	p, err := New(inner, Config{SpikeEvery: 1000, SpikeDelta: 50000})
	if err != nil {
		t.Fatal(err)
	}
	inner.cpus[0].refs = 5000
	inner.cpus[0].hits = 5000
	s := p.CPU(0).ReadCounters()
	if s.Refs <= 5000 {
		t.Errorf("Refs = %d, want spiked above 5000", s.Refs)
	}
	if s.Hits != 5000 {
		t.Errorf("Hits = %d, want unspiked 5000", s.Hits)
	}
	// Spikes are cumulative and monotone in the true value.
	inner.cpus[0].refs = 50000
	if s2 := p.CPU(0).ReadCounters(); s2.Refs <= s.Refs {
		t.Errorf("spiked Refs not monotone: %d then %d", s.Refs, s2.Refs)
	}
}

func TestSkewOffsetsClocksPerCPU(t *testing.T) {
	inner := newFake(3)
	p, err := New(inner, Config{SkewCycles: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		inner.cpus[i].cycles = 5000
		if got, want := p.CPU(i).Cycles(), uint64(5000+1000*i); got != want {
			t.Errorf("cpu%d Cycles = %d, want %d", i, got, want)
		}
	}
	// SetCycles inverts the skew so the inner clock lands where a
	// skew-free caller intended.
	p.CPU(2).SetCycles(9000)
	if inner.cpus[2].cycles != 7000 {
		t.Errorf("inner clock at %d after SetCycles(9000) with skew 2000, want 7000", inner.cpus[2].cycles)
	}
	// Targets at or below the skew cannot be represented; the clock
	// must not move backward or underflow.
	p.CPU(2).SetCycles(1500)
	if inner.cpus[2].cycles != 7000 {
		t.Errorf("inner clock moved to %d on an un-representable target", inner.cpus[2].cycles)
	}
}

func TestTransformsArePureFunctionsOfValue(t *testing.T) {
	cfg := Config{Seed: 9, WrapBits: 16, StuckEvery: 300, StuckLen: 50,
		DropEvery: 700, DropLen: 100, SpikeEvery: 500, SpikeDelta: 1 << 20}
	inner := newFake(2)
	a, err := New(inner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(inner, cfg) // independent wrapper, same schedule
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 2000; v += 13 {
		inner.cpus[0].refs = v
		inner.cpus[0].misses = v
		// Reading twice through one wrapper and once through another
		// must agree: no hidden per-read state.
		r1 := a.CPU(0).ReadCounters()
		r2 := a.CPU(0).ReadCounters()
		r3 := b.CPU(0).ReadCounters()
		if r1 != r2 || r1 != r3 {
			t.Fatalf("v=%d: reads diverge: %+v %+v %+v", v, r1, r2, r3)
		}
		if m1, m3 := a.CPU(0).Misses(), b.CPU(0).Misses(); m1 != m3 {
			t.Fatalf("v=%d: Misses diverge: %d %d", v, m1, m3)
		}
	}
}

func TestPerCPUPhasesDiffer(t *testing.T) {
	cfg := Config{Seed: 1, DropEvery: 1 << 40, DropLen: 1 << 39}
	inner := newFake(4)
	p, err := New(inner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	phases := map[uint64]bool{}
	for _, c := range p.cpus {
		phases[c.(*cpu).dropPhase] = true
	}
	if len(phases) < 3 {
		t.Errorf("only %d distinct phases across 4 CPUs", len(phases))
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	bad := []Config{
		{WrapBits: 3},
		{WrapBits: 32},
		{StuckEvery: 10, StuckLen: 10},
		{StuckLen: 5},
		{DropEvery: 10, DropLen: 12},
		{DropLen: 5},
		{SpikeDelta: 5},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
		if _, err := New(newFake(1), cfg); err == nil {
			t.Errorf("New(%+v) accepted an invalid schedule", cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("wrap=16,stuck=100@1000,drop=50@500,spike=4096@2000,skew=777,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 5, WrapBits: 16, StuckEvery: 1000, StuckLen: 100,
		DropEvery: 500, DropLen: 50, SpikeEvery: 2000, SpikeDelta: 4096, SkewCycles: 777}
	if cfg != want {
		t.Errorf("ParseSpec = %+v, want %+v", cfg, want)
	}
	// String renders back in spec syntax and re-parses to the same
	// schedule.
	back, err := ParseSpec(cfg.String())
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if back != cfg {
		t.Errorf("round trip %q = %+v, want %+v", cfg.String(), back, cfg)
	}

	if cfg, err := ParseSpec(""); err != nil || cfg.Enabled() {
		t.Errorf("empty spec = %+v, %v; want zero config", cfg, err)
	}
	if cfg, err := ParseSpec("all"); err != nil || !cfg.Enabled() {
		t.Errorf("'all' preset = %+v, %v; want every class enabled", cfg, err)
	} else if cfg.WrapBits == 0 || cfg.StuckEvery == 0 || cfg.DropEvery == 0 ||
		cfg.SpikeEvery == 0 || cfg.SkewCycles == 0 {
		t.Errorf("'all' preset leaves a class disabled: %+v", cfg)
	}

	for _, spec := range []string{
		"bogus=1", "wrap", "wrap=abc", "stuck=100", "stuck=x@y",
		"drop=5@0", "wrap=2", "stuck=10@5",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want failure", spec)
		} else if !strings.Contains(err.Error(), "faulty:") {
			t.Errorf("ParseSpec(%q) error %q lacks package prefix", spec, err)
		}
	}
}
