package faulty

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the command-line fault specification used by
// `atsim -faults`. The spec is a comma-separated list of fault classes:
//
//	wrap=BITS          counters wrap at 2^BITS (4..31)
//	stuck=LEN@EVERY    counters freeze for LEN counts out of every EVERY
//	drop=LEN@EVERY     counters read 0 for LEN counts out of every EVERY
//	spike=DELTA@EVERY  reference counts jump by DELTA every EVERY counts
//	skew=CYCLES        CPU i's clock reads i×CYCLES cycles ahead
//	seed=N             schedule seed (per-CPU phase derivation)
//
// The single word "all" selects a preset exercising every class at
// once. An empty spec yields the zero (pass-through) Config.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	if spec == "all" {
		return Config{
			Seed:       1,
			WrapBits:   20,
			StuckEvery: 50000,
			StuckLen:   9000,
			DropEvery:  70000,
			DropLen:    8000,
			SpikeEvery: 60000,
			SpikeDelta: 1 << 22,
			SkewCycles: 100000,
		}, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("faulty: bad fault %q (want key=value)", part)
		}
		switch key {
		case "wrap":
			bits, err := parseCount(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.WrapBits = uint(bits)
		case "stuck":
			ln, every, err := parseWindow(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.StuckLen, cfg.StuckEvery = ln, every
		case "drop":
			ln, every, err := parseWindow(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.DropLen, cfg.DropEvery = ln, every
		case "spike":
			delta, every, err := parseWindow(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.SpikeDelta, cfg.SpikeEvery = delta, every
		case "skew":
			cycles, err := parseCount(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.SkewCycles = cycles
		case "seed":
			seed, err := parseCount(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.Seed = seed
		default:
			return cfg, fmt.Errorf("faulty: unknown fault class %q (want wrap, stuck, drop, spike, skew or seed)", key)
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// String renders the Config back in ParseSpec syntax.
func (c Config) String() string {
	var parts []string
	if c.WrapBits != 0 {
		parts = append(parts, fmt.Sprintf("wrap=%d", c.WrapBits))
	}
	if c.StuckEvery != 0 {
		parts = append(parts, fmt.Sprintf("stuck=%d@%d", c.StuckLen, c.StuckEvery))
	}
	if c.DropEvery != 0 {
		parts = append(parts, fmt.Sprintf("drop=%d@%d", c.DropLen, c.DropEvery))
	}
	if c.SpikeEvery != 0 {
		parts = append(parts, fmt.Sprintf("spike=%d@%d", c.SpikeDelta, c.SpikeEvery))
	}
	if c.SkewCycles != 0 {
		parts = append(parts, fmt.Sprintf("skew=%d", c.SkewCycles))
	}
	if c.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", c.Seed))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// parseCount parses a single unsigned value.
func parseCount(key, val string) (uint64, error) {
	n, err := strconv.ParseUint(val, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("faulty: bad %s value %q: %v", key, val, err)
	}
	return n, nil
}

// parseWindow parses the LEN@EVERY form.
func parseWindow(key, val string) (uint64, uint64, error) {
	lenStr, everyStr, ok := strings.Cut(val, "@")
	if !ok {
		return 0, 0, fmt.Errorf("faulty: bad %s value %q (want LEN@EVERY)", key, val)
	}
	ln, err := strconv.ParseUint(lenStr, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("faulty: bad %s length %q: %v", key, lenStr, err)
	}
	every, err := strconv.ParseUint(everyStr, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("faulty: bad %s period %q: %v", key, everyStr, err)
	}
	if every == 0 {
		return 0, 0, fmt.Errorf("faulty: %s period must be nonzero", key)
	}
	return ln, every, nil
}
