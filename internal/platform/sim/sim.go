// Package sim adapts the deterministic simulated SMP of
// internal/machine (with its internal/perfctr monitoring units) to the
// platform seam. It is the first Platform backend — the substrate the
// paper's evaluation runs on — and the reference for what a backend
// must provide: per-CPU cycle clocks, wrapped 32-bit counter reads,
// monotonic 64-bit shadow miss counts, and the memory entry points.
//
// The adapter is a thin, allocation-free veneer: CPU handles are built
// once at construction, counter reads forward to the simulated PMU, and
// every memory operation forwards to the machine unchanged, so a run
// through the seam is event-for-event identical to one driven against
// the machine directly (the golden fingerprints pin this).
package sim

import (
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/platform"
)

// Platform wraps a *machine.Machine as a platform.Platform.
type Platform struct {
	m    *machine.Machine
	cpus []platform.CPU
}

// New wraps m. The machine stays accessible through Machine for
// sim-only diagnostics (coherence checks, bus traffic, footprints).
func New(m *machine.Machine) *Platform {
	p := &Platform{m: m}
	for i := 0; i < m.NCPU(); i++ {
		p.cpus = append(p.cpus, &cpu{c: m.CPU(i)})
	}
	return p
}

// Machine returns the wrapped simulated machine.
func (p *Platform) Machine() *machine.Machine { return p.m }

// NCPU implements platform.Platform.
func (p *Platform) NCPU() int { return p.m.NCPU() }

// CPU implements platform.Platform.
func (p *Platform) CPU(i int) platform.CPU { return p.cpus[i] }

// CacheLines implements platform.Platform: the per-CPU E-cache size in
// lines.
func (p *Platform) CacheLines() int { return p.m.Config().L2.Lines() }

// LineBytes implements platform.Platform.
func (p *Platform) LineBytes() uint64 { return uint64(p.m.Config().L2.LineSize) }

// PageBytes implements platform.Platform.
func (p *Platform) PageBytes() uint64 { return p.m.Config().PageSize }

// SharedLLC implements platform.Platform from the machine's topology.
func (p *Platform) SharedLLC() bool { return p.m.Config().Topology.Shared() }

// Alloc implements platform.Alloc.
func (p *Platform) Alloc(size, align uint64) mem.Range { return p.m.Alloc(size, align) }

// Apply implements platform.Platform.
func (p *Platform) Apply(cpu int, tid mem.ThreadID, batch mem.Batch) uint64 {
	return p.m.Apply(cpu, tid, batch)
}

// Advance implements platform.Platform.
func (p *Platform) Advance(cpu int, instrs uint64) { p.m.Advance(cpu, instrs) }

// AdvanceCycles implements platform.Platform.
func (p *Platform) AdvanceCycles(cpu int, cycles uint64) { p.m.AdvanceCycles(cpu, cycles) }

// TouchCode implements platform.Platform.
func (p *Platform) TouchCode(cpu int, tid mem.ThreadID, code mem.Range) {
	p.m.TouchCode(cpu, tid, code)
}

// SetMissHook implements platform.Platform.
func (p *Platform) SetMissHook(fn func(tid mem.ThreadID, va mem.Addr)) {
	p.m.MissHook = fn
}

// cpu adapts one simulated processor.
type cpu struct {
	c *machine.CPU
}

// Cycles implements platform.Clock.
func (c *cpu) Cycles() uint64 { return c.c.Cycles }

// SetCycles implements platform.Clock.
func (c *cpu) SetCycles(v uint64) {
	if v > c.c.Cycles {
		c.c.Cycles = v
	}
}

// ReadCounters implements platform.CounterSource: a user-level read of
// the PIC pair (refs on PIC0, hits on PIC1 under the default PCR).
func (c *cpu) ReadCounters() platform.CounterSnapshot {
	s := c.c.PMU.Read()
	return platform.CounterSnapshot{Refs: s.Pic0, Hits: s.Pic1}
}

// Misses implements platform.CounterSource: the 64-bit shadow total of
// E-cache misses (the PICs wrap; the shadow does not).
func (c *cpu) Misses() uint64 { return c.c.EMisses }
