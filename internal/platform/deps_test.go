package platform

// The point of the platform seam is that the locality runtime does not
// know what substrate it runs on. This test pins that property in the
// import graph itself: the non-test sources of internal/rt and
// internal/sched must not import the simulator (internal/machine) or
// the counter model (internal/perfctr) — only platform.*. Test files
// are exempt: they may construct a sim backend to drive the engine.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var forbidden = []string{
	"repro/internal/machine",
	"repro/internal/perfctr",
}

func TestRuntimeIsSubstrateIndependent(t *testing.T) {
	for _, pkg := range []string{"rt", "sched"} {
		dir := filepath.Join("..", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		checked := 0
		for _, ent := range entries {
			name := ent.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			checked++
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatalf("%s: bad import literal %s", path, imp.Path.Value)
				}
				for _, bad := range forbidden {
					if p == bad {
						t.Errorf("%s imports %s: internal/%s must consume only platform.*",
							path, p, pkg)
					}
				}
			}
		}
		if checked == 0 {
			t.Fatalf("no non-test sources found in %s — wrong directory?", dir)
		}
	}
}
