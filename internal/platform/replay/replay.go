// Package replay is the second platform backend: instead of simulating
// memory, it replays a recorded run (internal/trace) — the dispatch
// order, per-interval miss counts and sharing-graph edits captured from
// a live run — through the real scheduling stack. Clocks and counters
// advance exactly as the recording says they did; memory operations are
// no-ops (the misses already happened when the trace was captured).
//
// Replay serves two purposes. It demonstrates that the locality runtime
// is substrate-independent — internal/rt and internal/sched consume
// only platform.* and reproduce their footprint arithmetic bit-for-bit
// from a trace with no simulator in the loop. And it is the shape a
// hardware backend takes: a real machine records the same event stream
// from its PICs, and the same Evaluate recovers the model's per-interval
// footprint predictions offline.
package replay

import (
	"fmt"

	"repro/internal/annot"
	"repro/internal/cachesim"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Platform is a platform.Platform whose per-CPU clocks and counters are
// driven by a recording's interval stream rather than by simulation.
// Memory operations (Apply, Advance, TouchCode) are no-ops: their
// effects are already baked into the recorded counter values.
type Platform struct {
	rec  *trace.Recording
	cpus []*cpu
	brk  mem.Addr // bump allocator for Alloc
}

// New builds a replay platform over a validated recording. A recording
// that fails the trace.Validate pre-pass is refused with a descriptive
// error; replay never drives the scheduler from corrupt input.
func New(rec *trace.Recording) (*Platform, error) {
	if err := rec.Validate(); err != nil {
		return nil, fmt.Errorf("replay: refusing invalid recording: %w", err)
	}
	p := &Platform{rec: rec, brk: 0x1000}
	for i := 0; i < rec.NCPU; i++ {
		p.cpus = append(p.cpus, &cpu{})
	}
	return p, nil
}

// Recording returns the recording the platform replays.
func (p *Platform) Recording() *trace.Recording { return p.rec }

// NCPU implements platform.Platform.
func (p *Platform) NCPU() int { return p.rec.NCPU }

// CPU implements platform.Platform.
func (p *Platform) CPU(i int) platform.CPU { return p.cpus[i] }

// CacheLines implements platform.Platform.
func (p *Platform) CacheLines() int { return p.rec.CacheLines }

// LineBytes implements platform.Platform.
func (p *Platform) LineBytes() uint64 { return p.rec.LineBytes }

// PageBytes implements platform.Platform.
func (p *Platform) PageBytes() uint64 { return p.rec.PageBytes }

// SharedLLC implements platform.Platform from the recording's topology
// provenance (validated at load; absent means private-dm).
func (p *Platform) SharedLLC() bool {
	topo, _ := cachesim.ParseTopology(p.rec.Topology)
	return topo.Shared()
}

// Alloc implements platform.Alloc with a bump allocator: replayed runs
// have no memory system, but callers still get distinct ranges.
func (p *Platform) Alloc(size, align uint64) mem.Range {
	if align == 0 {
		align = 64
	}
	base := (uint64(p.brk) + align - 1) &^ (align - 1)
	p.brk = mem.Addr(base + size)
	return mem.Range{Base: mem.Addr(base), Len: size}
}

// Apply implements platform.Platform as a no-op: the recorded counters
// already include every access of the original run.
func (p *Platform) Apply(int, mem.ThreadID, mem.Batch) uint64 { return 0 }

// Advance implements platform.Platform as a no-op.
func (p *Platform) Advance(int, uint64) {}

// AdvanceCycles implements platform.Platform as a no-op: replay time
// comes from the recorded cycle windows, not from charged work.
func (p *Platform) AdvanceCycles(int, uint64) {}

// TouchCode implements platform.Platform as a no-op.
func (p *Platform) TouchCode(int, mem.ThreadID, mem.Range) {}

// SetMissHook implements platform.Platform. Replay never generates
// misses, so the hook is accepted and never called.
func (p *Platform) SetMissHook(func(tid mem.ThreadID, va mem.Addr)) {}

// seek moves cpu i's clock and counters to one end of an interval.
func (p *Platform) seek(i int, cycles, misses uint64, snap platform.CounterSnapshot) {
	c := p.cpus[i]
	c.cycles, c.misses, c.snap = cycles, misses, snap
}

// cpu is one replayed processor: a cursor into the recording.
type cpu struct {
	cycles uint64
	misses uint64
	snap   platform.CounterSnapshot
}

// Cycles implements platform.Clock.
func (c *cpu) Cycles() uint64 { return c.cycles }

// SetCycles implements platform.Clock (forward only, like hardware).
func (c *cpu) SetCycles(v uint64) {
	if v > c.cycles {
		c.cycles = v
	}
}

// ReadCounters implements platform.CounterSource.
func (c *cpu) ReadCounters() platform.CounterSnapshot { return c.snap }

// Misses implements platform.CounterSource.
func (c *cpu) Misses() uint64 { return c.misses }

// IntervalPrediction is the model's state for the blocking thread after
// one replayed context switch: the expected footprint S and inflated
// priority the scheduler computed from the recorded miss counts.
type IntervalPrediction struct {
	Index  int // position among the recording's intervals
	CPU    int
	Thread mem.ThreadID
	Misses uint64 // the interval's E-cache miss count n
	// S and Prio are zero under FCFS (no footprint model runs).
	S    float64
	Prio float64
}

// Result is a replayed run: the per-interval model predictions and the
// floating-point operation count the priority maintenance cost (the
// paper's Table 3 accounting), recovered without a simulator.
type Result struct {
	Policy    string
	Intervals []IntervalPrediction
	Flops     uint64
}

// Evaluate replays a recording through the real scheduler and model:
// every spawn, sharing-graph edit and context switch is re-issued with
// the recorded miss counts, so the footprint entries evolve exactly as
// they did in the original run. The returned predictions are therefore
// bit-identical to the live run's — the round-trip test pins this.
func Evaluate(rec *trace.Recording) (*Result, error) {
	p, err := New(rec)
	if err != nil {
		return nil, err
	}
	scheme, err := model.SchemeFor(rec.Policy)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	var mdl *model.Model
	if scheme != nil {
		mdl = model.New(rec.CacheLines)
	}
	graph := annot.New()
	s := sched.New(mdl, scheme, graph, rec.NCPU, rec.ThresholdLines, platform.MissCounterOf(p))
	s.SetSharedClock(p.SharedLLC())

	res := &Result{Policy: rec.Policy}
	for i, ev := range rec.Events {
		switch ev.Kind {
		case trace.EvSpawn:
			s.Register(ev.Thread)
			s.MakeRunnable(ev.Thread)
		case trace.EvShare:
			graph.Share(ev.From, ev.To, ev.Q)
		case trace.EvExit:
			graph.RemoveThread(ev.Thread)
			s.Unregister(ev.Thread)
		case trace.EvInterval:
			iv := ev.Interval
			if !s.Registered(iv.Thread) {
				return nil, fmt.Errorf("replay: event %d: interval for unknown thread %v", i, iv.Thread)
			}
			// Dispatch end: the scheduler reads the decay reference m(t)
			// the live run saw at NoteDispatch.
			p.seek(iv.CPU, iv.StartCycles, iv.DispatchMisses,
				platform.CounterSnapshot{Refs: iv.StartRefs, Hits: iv.StartHits})
			s.MakeRunnable(iv.Thread) // wake events are not recorded; idempotent
			s.NoteDispatch(iv.Thread, iv.CPU)
			// Block end: m(t) moves to the recorded block-time count and
			// the blocking update runs with the interval's miss count n.
			p.seek(iv.CPU, iv.EndCycles, iv.BlockMisses,
				platform.CounterSnapshot{Refs: iv.EndRefs, Hits: iv.EndHits})
			n := iv.Misses()
			s.OnBlock(iv.Thread, iv.CPU, n)
			pred := IntervalPrediction{
				Index: len(res.Intervals), CPU: iv.CPU, Thread: iv.Thread, Misses: n,
			}
			if e := s.EntryOf(iv.Thread, iv.CPU); e != nil {
				pred.S, pred.Prio = e.S, e.Prio
			}
			res.Intervals = append(res.Intervals, pred)
		}
	}
	if mdl != nil {
		res.Flops = mdl.FLOPs()
	}
	return res, nil
}
