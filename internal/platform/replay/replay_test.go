package replay

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/platform/sim"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// liveCapture is one interval's model state observed during the live
// simulated run, at the same point replay captures it (right after the
// blocking update).
type liveCapture struct {
	s, prio float64
	misses  uint64
}

// recordLive runs an app on the simulator with a Recorder attached and
// captures the scheduler's per-interval S/Prio as the run happens.
func recordLive(t *testing.T, app workloads.SchedApp, policy string, cpus int, scale float64) (*trace.Recording, []liveCapture) {
	t.Helper()
	cfg := machine.UltraSPARC1()
	if cpus > 1 {
		cfg = machine.Enterprise5000(cpus)
	}
	p := sim.New(machine.New(cfg))
	e, err := rt.New(p, rt.Options{Policy: policy, Seed: 11})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rec := trace.NewRecorder(policy, p.NCPU(), p.CacheLines(), p.LineBytes(), p.PageBytes(), 16)
	var live []liveCapture
	e.OnEvent = func(ev trace.Event) {
		rec.Observe(ev)
		if ev.Kind != trace.EvInterval {
			return
		}
		// The event fires after the scheduler's blocking update, so the
		// entry holds exactly what replay will recompute.
		c := liveCapture{misses: ev.Interval.Misses()}
		if en := e.Scheduler().EntryOf(ev.Interval.Thread, ev.Interval.CPU); en != nil {
			c.s, c.prio = en.S, en.Prio
		}
		live = append(live, c)
	}
	app.Spawn(e, scale)
	if err := e.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rec.Recording(), live
}

// TestReplayRoundTrip is the acceptance test for the replay backend:
// record tasks and merge under LFF and CRT, push the recording through
// Save/Load, replay it with no simulator in the loop, and require the
// model's per-interval footprint S and priority to match the live run
// bit for bit.
func TestReplayRoundTrip(t *testing.T) {
	apps := map[string]workloads.SchedApp{}
	for _, a := range workloads.SchedApps() {
		apps[a.Name] = a
	}
	cases := []struct {
		app    string
		policy string
		cpus   int
	}{
		{"tasks", "LFF", 2},
		{"tasks", "CRT", 4},
		{"merge", "LFF", 2},
	}
	for _, c := range cases {
		rec, live := recordLive(t, apps[c.app], c.policy, c.cpus, 0.05)
		if len(live) == 0 {
			t.Fatalf("%s/%s: no intervals recorded", c.app, c.policy)
		}

		// Serialization round trip, as -record / -replay would do it.
		var buf bytes.Buffer
		if err := rec.Save(&buf); err != nil {
			t.Fatalf("Save: %v", err)
		}
		loaded, err := trace.Load(&buf)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}

		res, err := Evaluate(loaded)
		if err != nil {
			t.Fatalf("%s/%s: Evaluate: %v", c.app, c.policy, err)
		}
		if len(res.Intervals) != len(live) {
			t.Fatalf("%s/%s: replay produced %d intervals, live run %d",
				c.app, c.policy, len(res.Intervals), len(live))
		}
		for i, pred := range res.Intervals {
			want := live[i]
			if pred.Misses != want.misses {
				t.Fatalf("%s/%s interval %d: misses %d != live %d",
					c.app, c.policy, i, pred.Misses, want.misses)
			}
			// Bit-identical, not approximately equal: the replay drives
			// the same scheduler code with the same inputs.
			if math.Float64bits(pred.S) != math.Float64bits(want.s) ||
				math.Float64bits(pred.Prio) != math.Float64bits(want.prio) {
				t.Fatalf("%s/%s interval %d: replay (S=%v prio=%v) != live (S=%v prio=%v)",
					c.app, c.policy, i, pred.S, pred.Prio, want.s, want.prio)
			}
		}
		if res.Flops == 0 {
			t.Errorf("%s/%s: replay counted no model FLOPs", c.app, c.policy)
		}
	}
}

// TestReplayFCFSHasNoModel: under FCFS the replay still walks the
// stream but computes no footprints.
func TestReplayFCFSHasNoModel(t *testing.T) {
	apps := map[string]workloads.SchedApp{}
	for _, a := range workloads.SchedApps() {
		apps[a.Name] = a
	}
	rec, live := recordLive(t, apps["tasks"], "FCFS", 2, 0.05)
	res, err := Evaluate(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) != len(live) {
		t.Fatalf("intervals %d != %d", len(res.Intervals), len(live))
	}
	if res.Flops != 0 {
		t.Errorf("FCFS replay counted %d FLOPs", res.Flops)
	}
}

// TestEvaluateRejectsUnknownPolicy: a recording naming an unregistered
// scheme errors instead of silently running FCFS.
func TestEvaluateRejectsUnknownPolicy(t *testing.T) {
	rec := &trace.Recording{Policy: "NOPE", NCPU: 1, CacheLines: 8192, LineBytes: 64, PageBytes: 8192}
	if _, err := Evaluate(rec); err == nil {
		t.Error("Evaluate accepted an unknown policy")
	}
}
