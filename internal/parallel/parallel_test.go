package parallel

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 137
		counts := make([]atomic.Int32, n)
		if err := ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	called := false
	if err := ForEach(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(4, -3, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachReportsLowestFailingIndex(t *testing.T) {
	// Several indices fail; the reported error must be the lowest
	// index's, matching a sequential loop's first error.
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(workers, 100, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 3 failed" {
			t.Fatalf("workers=%d: got %v, want cell 3 failed", workers, err)
		}
	}
}

func TestForEachSequentialStopsEarly(t *testing.T) {
	// workers == 1 must stop at the first error like a plain loop.
	var calls int
	boom := errors.New("boom")
	err := ForEach(1, 50, func(i int) error {
		calls++
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if calls != 6 {
		t.Fatalf("sequential loop made %d calls, want 6", calls)
	}
}

func TestMapCollectsIndexAddressed(t *testing.T) {
	out, err := Map(8, 64, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if _, err := Map(4, 10, func(i int) (int, error) {
		if i >= 2 {
			return 0, fmt.Errorf("bad %d", i)
		}
		return i, nil
	}); err == nil || err.Error() != "bad 2" {
		t.Fatalf("got %v, want bad 2", err)
	}
}

func TestDefaultJobsPositive(t *testing.T) {
	if DefaultJobs() < 1 {
		t.Fatalf("DefaultJobs() = %d", DefaultJobs())
	}
}

// TestForEachRecoversPanic pins the crash-isolation contract: a
// panicking cell surfaces as a *PanicError carrying its index and
// stack — at every worker count, including the sequential path — and
// the process survives.
func TestForEachRecoversPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 8, func(i int) error {
			if i == 5 {
				panic("cell exploded")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: ForEach = %v, want *PanicError", workers, err)
		}
		if pe.Index != 5 {
			t.Errorf("workers=%d: panic index = %d, want 5", workers, pe.Index)
		}
		if pe.Value != "cell exploded" {
			t.Errorf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "parallel") {
			t.Errorf("workers=%d: stack missing frames:\n%s", workers, pe.Stack)
		}
		if !strings.Contains(err.Error(), "cell 5 panicked") {
			t.Errorf("workers=%d: error text %q lacks index", workers, err)
		}
	}
}

// TestForEachPanicLowestIndexWins pins that panics rank against plain
// errors by index, preserving the sequential-equivalence contract.
func TestForEachPanicLowestIndexWins(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(4, 8, func(i int) error {
		switch i {
		case 2:
			return boom
		case 6:
			panic("later panic")
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("ForEach = %v, want the index-2 error to win over the index-6 panic", err)
	}
}

// TestMapRecoversPanic pins the same isolation through Map.
func TestMapRecoversPanic(t *testing.T) {
	_, err := Map(4, 4, func(i int) (int, error) {
		if i == 1 {
			panic(fmt.Sprintf("cell %d poisoned", i))
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 1 {
		t.Fatalf("Map = %v, want *PanicError at index 1", err)
	}
}
