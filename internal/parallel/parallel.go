// Package parallel is the experiment fan-out engine: a small worker
// pool that runs independent simulation cells across OS threads while
// preserving the bit-for-bit determinism of the sequential driver.
//
// Every experiment in this repository is a matrix of independent cells
// — (application × policy × platform) scheduling runs, or per-app
// footprint studies — and each cell builds its own machine.New and
// seeds its own xrand stream. Nothing is shared between cells, so the
// only way parallelism could change a result is through collection
// order. ForEach therefore never appends from workers: callers write
// cell i's result into slot i of a pre-sized slice, and errors are
// reported for the lowest failing index, exactly as a sequential loop
// would surface them.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered from a cell function, converted to an
// error so one poisoned cell fails its run instead of crashing the
// whole process (a server hosting thousands of unrelated sessions must
// survive any single one). It carries the cell index, the panic value,
// and the stack captured at the panic site.
type PanicError struct {
	// Index is the cell whose fn panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery, trimmed by nothing —
	// the raw debug.Stack bytes.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: cell %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// call runs fn(i), converting a panic into a *PanicError. Recovery
// happens on the calling goroutine — the worker that owns the cell —
// so the pool and every other cell keep running.
func call(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// DefaultJobs returns the worker count used when a caller passes
// workers <= 0: the process's GOMAXPROCS, i.e. "use the machine".
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(i) for every i in [0, n) using the given number of
// workers and returns the error of the lowest failing index (matching
// what a sequential loop that stops at the first error would have
// returned). workers <= 0 selects DefaultJobs(); workers == 1 runs the
// plain sequential loop on the calling goroutine, with an early exit at
// the first error.
//
// fn must be safe to call concurrently for distinct indices. The
// deterministic-collection contract is the caller's side: write results
// only to index i's own slot.
//
// A panicking fn never crashes the process: the panic is recovered on
// its worker goroutine and reported as a *PanicError carrying the cell
// index and stack, ranked against other failures by index like any
// other error.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultJobs()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := call(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = n // lowest index that failed
		firstErr error
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := call(i, fn); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Map runs fn over [0, n) with the given worker count and collects the
// results into an index-addressed slice: out[i] = fn(i). It is the
// common collect-into-slots pattern of ForEach packaged for callers
// whose cells return a single value.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
