// Package trace generates memory reference streams with controlled
// statistical structure. The model-evaluation experiments (paper
// Figures 4-7) drive the cache simulator with these streams in place of
// the paper's Shade-captured application traces.
//
// The generator vocabulary matches the behaviour classes the paper
// itself identifies:
//
//   - uniform random walks — the microbenchmark of Figure 4 and the
//     model's own independence assumption;
//   - clustered runs — "run lengths generally range from one to ten
//     words" (C applications: slight footprint overestimation);
//   - long sequential sweeps — the typechecker's creation-order tree
//     walk ("nonstationary" behaviour);
//   - page-stride conflict walks — misses concentrated on few cache
//     sets, which grow the miss count without growing the footprint
//     (raytrace's "conflict misses that do not significantly increase
//     the footprint", and the extreme of reference clustering);
//   - hot-set reuse — the post-transient plateau of Figure 6.
//
// A Pattern mixes these ingredients with fixed probabilities; a Gen
// emits access batches from a pattern deterministically.
package trace

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/xrand"
)

// Pattern describes the statistical shape of a reference stream. All
// probabilities are per emitted run, not per reference.
type Pattern struct {
	// Fresh is the region from which new data is referenced (the
	// thread's main state). Required.
	Fresh mem.Range
	// Sequential selects a circular sequential sweep through Fresh for
	// fresh runs; otherwise fresh runs start at uniformly random lines.
	Sequential bool
	// MeanRunWords is the geometric mean length, in 8-byte words, of a
	// sequential run (1 = independent references).
	MeanRunWords int
	// Hot, when non-empty, is a small reuse region; PHot of the runs
	// re-reference it (mostly cache hits after warmup).
	Hot  mem.Range
	PHot float64
	// ConflictStride and ConflictSpan enable page-stride conflict
	// traffic: PConflict of the runs touch one line at successive
	// ConflictStride intervals within a ConflictSpan-sized window of
	// Fresh, concentrating misses on few cache sets.
	ConflictStride uint64
	ConflictSpan   uint64
	PConflict      float64
	// UsablePerPage, when nonzero, confines fresh traffic to the first
	// UsablePerPage bytes of every PageBytes-sized page of Fresh —
	// the footprint signature of structured allocation (rows shorter
	// than a page, pool arenas with headers, power-of-two padding).
	// Misses then cover only a fraction of the cache sets, which is
	// how real programs' footprints saturate below the model's
	// prediction.
	UsablePerPage uint64
	// PageBytes is the page size for UsablePerPage (default 8192).
	PageBytes uint64
	// WriteFrac is the probability that a run writes instead of reads.
	WriteFrac float64
	// ComputePerRef is the number of pure-compute instructions the
	// workload executes per memory reference (shapes MPI in Figure 6).
	ComputePerRef float64
}

func (p Pattern) validate() {
	// Invariant panics: patterns are compiled into the experiment
	// drivers, not user input — a bad one is a programming error.
	if p.Fresh.Len == 0 {
		panic("trace: pattern needs a Fresh region")
	}
	if p.MeanRunWords < 1 {
		panic("trace: MeanRunWords must be >= 1")
	}
	if p.PHot < 0 || p.PConflict < 0 || p.PHot+p.PConflict > 1 {
		panic(fmt.Sprintf("trace: bad mix PHot=%v PConflict=%v", p.PHot, p.PConflict))
	}
	if p.PHot > 0 && p.Hot.Len == 0 {
		panic("trace: PHot > 0 without a Hot region")
	}
	if p.PConflict > 0 && (p.ConflictStride == 0 || p.ConflictSpan < p.ConflictStride) {
		panic("trace: conflict traffic needs stride and span")
	}
	if p.UsablePerPage != 0 && p.UsablePerPage > p.pageBytes() {
		panic("trace: UsablePerPage exceeds the page size")
	}
}

// pageBytes returns the structured-page size.
func (p Pattern) pageBytes() uint64 {
	if p.PageBytes == 0 {
		return 8192
	}
	return p.PageBytes
}

// usableLen returns the length of the fresh index space: the whole
// region, or the usable fraction when page structure is configured.
func (p Pattern) usableLen() uint64 {
	if p.UsablePerPage == 0 {
		return p.Fresh.Len
	}
	pages := p.Fresh.Len / p.pageBytes()
	if pages == 0 {
		return p.Fresh.Len
	}
	return pages * p.UsablePerPage
}

// Gen emits reference batches from a Pattern. It is deterministic for a
// given seed and not safe for concurrent use.
type Gen struct {
	pat Pattern
	rng *xrand.Source

	sweepPos    uint64 // byte offset into Fresh for sequential mode
	conflictPos uint64 // byte offset of the next conflict line
}

// NewGen builds a generator.
func NewGen(pat Pattern, seed uint64) *Gen {
	pat.validate()
	return &Gen{pat: pat, rng: xrand.New(seed)}
}

// Pattern returns the generator's pattern.
func (g *Gen) Pattern() Pattern { return g.pat }

// Emit appends runs totalling at least budget references to b and
// returns the extended batch together with the pure-compute instruction
// count the workload interleaves with them.
func (g *Gen) Emit(b mem.Batch, budget int) (mem.Batch, uint64) {
	refs := 0
	for refs < budget {
		run := g.rng.Geometric(float64(g.pat.MeanRunWords))
		write := g.rng.Bool(g.pat.WriteFrac)
		var a mem.Access
		switch x := g.rng.Float64(); {
		case x < g.pat.PConflict:
			a = g.conflictRun(write)
		case x < g.pat.PConflict+g.pat.PHot:
			a = g.hotRun(run, write)
		default:
			a = g.freshRun(run, write)
		}
		b = append(b, a)
		refs += int(a.Count)
	}
	return b, uint64(float64(refs) * g.pat.ComputePerRef)
}

// freshRun references new territory: a sequential word run starting at
// the sweep position (Sequential) or at a random word (otherwise),
// clamped so it never crosses a usable-span boundary. With page
// structure, positions index the usable prefix of each page and are
// mapped to the sparse physical layout.
func (g *Gen) freshRun(words int, write bool) mem.Access {
	span := g.pat.usableLen()
	var start uint64
	if g.pat.Sequential {
		start = g.sweepPos
		g.sweepPos = (g.sweepPos + uint64(words)*8) % span
	} else {
		start = g.rng.Uint64n(span) &^ 7
	}
	base := g.pat.Fresh.Base
	if u := g.pat.UsablePerPage; u != 0 {
		// Map the abstract position to the sparse layout and clamp the
		// run inside the usable prefix of its page.
		page := start / u
		off := start % u
		base += mem.Addr(page*g.pat.pageBytes() + off)
		if max := (u - off) / 8; uint64(words) > max {
			words = int(max)
		}
	} else {
		base += mem.Addr(start)
		if max := (span - start) / 8; uint64(words) > max {
			words = int(max)
		}
	}
	if words == 0 {
		words = 1
	}
	return access(base, words, write)
}

// hotRun re-references the hot region at a random offset.
func (g *Gen) hotRun(words int, write bool) mem.Access {
	hot := g.pat.Hot
	start := g.rng.Uint64n(hot.Len) &^ 7
	if max := (hot.Len - start) / 8; uint64(words) > max {
		words = int(max)
		if words == 0 {
			words = 1
			start = 0
		}
	}
	return access(hot.Base+mem.Addr(start), words, write)
}

// conflictRun touches exactly one word at the next page-stride position:
// successive conflict runs walk addresses ConflictStride apart, which
// map to the same few cache sets and evict one another without growing
// the footprint.
func (g *Gen) conflictRun(write bool) mem.Access {
	a := access(g.pat.Fresh.Base+mem.Addr(g.conflictPos), 1, write)
	g.conflictPos += g.pat.ConflictStride
	if g.conflictPos+8 > g.pat.ConflictSpan || g.conflictPos+8 > g.pat.Fresh.Len {
		g.conflictPos = 0
	}
	return a
}

func access(base mem.Addr, words int, write bool) mem.Access {
	return mem.Access{Base: base, Count: int32(words), Stride: 8, Size: 8, Write: write}
}

// Uniform returns the Figure 4 microbenchmark pattern: independent
// uniformly distributed single-word references over region.
func Uniform(region mem.Range) Pattern {
	return Pattern{Fresh: region, MeanRunWords: 1, ComputePerRef: 1}
}
