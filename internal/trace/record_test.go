package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mem"
)

// smallRecording builds a structurally valid two-CPU recording with a
// spawn, a share edge, two intervals and an exit.
func smallRecording() *Recording {
	return &Recording{
		Policy: "LFF", NCPU: 2, CacheLines: 8192,
		LineBytes: 64, PageBytes: 8192, ThresholdLines: 16,
		Events: []Event{
			{Kind: EvSpawn, Thread: 1},
			{Kind: EvShare, From: 1, To: 2, Q: 0.5},
			{Kind: EvInterval, Interval: Interval{
				CPU: 0, Thread: 1,
				DispatchMisses: 10, BlockMisses: 25,
				StartRefs: 100, StartHits: 90, EndRefs: 160, EndHits: 135,
				StartCycles: 1000, EndCycles: 5000,
			}},
			{Kind: EvInterval, Interval: Interval{
				CPU: 1, Thread: 1,
				DispatchMisses: 0, BlockMisses: 7,
				StartRefs: 0, StartHits: 0, EndRefs: 9, EndHits: 2,
				StartCycles: 0, EndCycles: 900,
			}},
			{Kind: EvExit, Thread: 1},
		},
	}
}

func TestRecordingRoundTrip(t *testing.T) {
	rec := smallRecording()
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Policy != rec.Policy || got.NCPU != rec.NCPU ||
		got.CacheLines != rec.CacheLines || got.ThresholdLines != rec.ThresholdLines {
		t.Errorf("header changed: %+v", got)
	}
	if len(got.Events) != len(rec.Events) {
		t.Fatalf("events = %d, want %d", len(got.Events), len(rec.Events))
	}
	for i := range rec.Events {
		if got.Events[i] != rec.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, got.Events[i], rec.Events[i])
		}
	}
}

func TestIntervalMissesModular(t *testing.T) {
	iv := Interval{StartRefs: 1<<32 - 3, StartHits: 1<<32 - 1, EndRefs: 7, EndHits: 3}
	// refs delta = 10, hits delta = 4, both across the wrap.
	if got := iv.Misses(); got != 6 {
		t.Errorf("Misses across wrap = %d, want 6", got)
	}
	if got := (Interval{EndHits: 5}).Misses(); got != 0 {
		t.Errorf("hits>refs not clamped: %d", got)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Recording)
		want string
	}{
		{"no cpus", func(r *Recording) { r.NCPU = 0 }, "CPUs"},
		{"tiny cache", func(r *Recording) { r.CacheLines = 1 }, "lines"},
		{"cpu out of range", func(r *Recording) { r.Events[2].Interval.CPU = 5 }, "cpu 5"},
		{"unknown kind", func(r *Recording) { r.Events[0].Kind = 99 }, "unknown kind"},
		{"interval runs backward", func(r *Recording) {
			r.Events[2].Interval.BlockMisses = 3 // < DispatchMisses 10
		}, "backward"},
		{"per-cpu not monotonic", func(r *Recording) {
			// Second interval on cpu 0 starting below the first's end.
			r.Events[3].Interval.CPU = 0
			r.Events[3].Interval.DispatchMisses = 4
			r.Events[3].Interval.BlockMisses = 6
		}, "monotonic"},
	}
	for _, c := range cases {
		rec := smallRecording()
		c.edit(rec)
		err := rec.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	rec := smallRecording()
	rec.NCPU = 0
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("Load accepted a recording Validate rejects")
	}
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("Load accepted garbage")
	}
}

func TestRecorderAccumulates(t *testing.T) {
	r := NewRecorder("CRT", 4, 8192, 64, 8192, 16)
	r.Observe(Event{Kind: EvSpawn, Thread: mem.ThreadID(3)})
	r.Observe(Event{Kind: EvExit, Thread: mem.ThreadID(3)})
	rec := r.Recording()
	if rec.Policy != "CRT" || rec.NCPU != 4 || len(rec.Events) != 2 {
		t.Errorf("recorder state: %+v", rec)
	}
	if got := len(rec.Intervals()); got != 0 {
		t.Errorf("Intervals = %d, want 0", got)
	}
}
