package trace

// This file defines the recorded-run format the replay backend
// (internal/platform/replay) consumes: the scheduling-relevant event
// stream of a run — thread lifetimes, sharing-graph edits, and one
// interval record per context switch carrying exactly the inputs the
// scheduler's footprint updates read (dispatch-time and block-time
// 64-bit miss counts, the wrapped 32-bit counter snapshots, and the
// cycle window). A recording captured from a simulator run can be
// saved, reloaded, and replayed through the real scheduler/model stack
// with no simulator in the loop; a future hardware backend records the
// same stream from real counters.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/cachesim"
	"repro/internal/mem"
	"repro/internal/model"
)

// CurrentVersion is the recording format version this build writes.
// Load accepts versions up to CurrentVersion (0 is the legacy
// pre-versioning format, read as version 1) and refuses anything newer
// with a descriptive error instead of misinterpreting skewed fields.
const CurrentVersion = 1

// Validation bounds. Recordings are untrusted input (they arrive from
// files), so structural limits are enforced before any allocation or
// arithmetic keys off the header fields.
const (
	// maxNCPU bounds the processor count a recording may claim; real
	// recordings come from machines with a handful of CPUs, and the
	// validator allocates per-CPU state.
	maxNCPU = 1 << 16
	// maxCacheLines bounds the claimed cache size; the model allocates
	// O(CacheLines) lookup tables.
	maxCacheLines = 1 << 28
)

// EventKind enumerates recorded event types.
type EventKind uint8

// Recorded event kinds, in the order the runtime emits them.
const (
	// EvSpawn: a thread was created and registered with the scheduler.
	EvSpawn EventKind = iota + 1
	// EvExit: a thread exited and was unregistered (its sharing edges
	// are removed at the same point).
	EvExit
	// EvShare: an edge (From, To, Q) was written into the sharing
	// graph — by an at_share annotation or by runtime inference.
	EvShare
	// EvInterval: one scheduling interval completed (dispatch → block).
	EvInterval
)

func (k EventKind) String() string {
	switch k {
	case EvSpawn:
		return "spawn"
	case EvExit:
		return "exit"
	case EvShare:
		return "share"
	case EvInterval:
		return "interval"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Interval is one scheduling interval of a recorded run: thread Thread
// ran on processor CPU from StartCycles to EndCycles. The miss fields
// carry exactly what the scheduler's update discipline consumed:
// DispatchMisses is the processor's 64-bit cumulative miss count when
// the thread was dispatched (the decay reference point), BlockMisses
// the count when it blocked (the m(t) of the priority update), and
// Start/End the wrapped 32-bit counter snapshots whose modular
// difference is the interval's miss count n.
type Interval struct {
	CPU    int          `json:"cpu"`
	Thread mem.ThreadID `json:"thread"`

	DispatchMisses uint64 `json:"dispatchMisses"`
	BlockMisses    uint64 `json:"blockMisses"`
	// StartRefs/StartHits and EndRefs/EndHits are the wrapped counter
	// snapshots at the interval's ends.
	StartRefs uint32 `json:"startRefs"`
	StartHits uint32 `json:"startHits"`
	EndRefs   uint32 `json:"endRefs"`
	EndHits   uint32 `json:"endHits"`

	StartCycles uint64 `json:"startCycles"`
	EndCycles   uint64 `json:"endCycles"`
}

// Misses returns the interval's E-cache miss count n, derived from the
// wrapped snapshots with modular 32-bit arithmetic (correct across
// counter wraparound for intervals shorter than 2^32 events).
func (iv Interval) Misses() uint64 {
	refs := uint64(iv.EndRefs - iv.StartRefs)
	hits := uint64(iv.EndHits - iv.StartHits)
	if hits > refs {
		return 0
	}
	return refs - hits
}

// Event is one element of the recorded stream. Only the fields of its
// Kind are meaningful.
type Event struct {
	Kind EventKind `json:"kind"`
	// Thread is the subject of EvSpawn/EvExit.
	Thread mem.ThreadID `json:"thread,omitempty"`
	// From/To/Q describe an EvShare edge.
	From mem.ThreadID `json:"from,omitempty"`
	To   mem.ThreadID `json:"to,omitempty"`
	Q    float64      `json:"q,omitempty"`
	// Interval carries an EvInterval record.
	Interval Interval `json:"interval,omitempty"`
}

// Recording is a complete captured run: the substrate geometry the
// scheduler needs (processor count, cache size, page/line geometry),
// the policy it ran under, and the event stream.
type Recording struct {
	// Version is the format version the recording was written with
	// (see CurrentVersion). Zero means the legacy pre-versioning
	// format, which is read as version 1.
	Version int `json:"version,omitempty"`
	// Policy is the scheduling policy of the recorded run ("FCFS",
	// "LFF", "CRT", or any registered scheme name).
	Policy string `json:"policy"`
	// NCPU is the processor count.
	NCPU int `json:"ncpu"`
	// CacheLines is the per-CPU E-cache size in lines (the model's N).
	CacheLines int `json:"cacheLines"`
	// LineBytes and PageBytes complete the geometry.
	LineBytes uint64 `json:"lineBytes"`
	PageBytes uint64 `json:"pageBytes"`
	// ThresholdLines is the heap demotion threshold of the recorded
	// run.
	ThresholdLines float64 `json:"thresholdLines"`
	// Topology is the canonical cache-topology spec of the recorded
	// run ("private-dm", "shared-llc", ...; see cachesim.ParseTopology).
	// Empty means private-dm: recordings predate shared topologies and
	// the zero value is the paper's hierarchy.
	Topology string `json:"topology,omitempty"`
	// Events is the stream, in emission order.
	Events []Event `json:"events"`
}

// Validate checks that the recording is structurally sound: a readable
// format version, sane geometry, events of known kinds with fields in
// range (thread IDs valid, sharing coefficients in [0,1], interval CPU
// indices in range), and monotonic per-CPU miss counts and cycle
// windows. It is the pre-pass replay and `atsim -replay` run before
// feeding a recording to the scheduler: a truncated, bit-flipped, or
// version-skewed recording yields a descriptive error here, never a
// panic or a silent mis-replay.
func (r *Recording) Validate() error {
	if r.Version < 0 || r.Version > CurrentVersion {
		return fmt.Errorf("trace: recording format version %d (this build reads versions <= %d)",
			r.Version, CurrentVersion)
	}
	if r.NCPU < 1 || r.NCPU > maxNCPU {
		return fmt.Errorf("trace: recording has %d CPUs (want 1..%d)", r.NCPU, maxNCPU)
	}
	if r.CacheLines < 2 || r.CacheLines > maxCacheLines {
		return fmt.Errorf("trace: recording cache of %d lines (want 2..%d)", r.CacheLines, maxCacheLines)
	}
	if err := checkPow2("line size", r.LineBytes); err != nil {
		return err
	}
	if err := checkPow2("page size", r.PageBytes); err != nil {
		return err
	}
	if math.IsNaN(r.ThresholdLines) || r.ThresholdLines < 0 || r.ThresholdLines > float64(maxCacheLines) {
		return fmt.Errorf("trace: demotion threshold %v out of range", r.ThresholdLines)
	}
	if _, err := cachesim.ParseTopology(r.Topology); err != nil {
		return fmt.Errorf("trace: recording topology: %w", err)
	}
	lastMiss := make([]uint64, r.NCPU)
	lastCycle := make([]uint64, r.NCPU)
	for i, ev := range r.Events {
		switch ev.Kind {
		case EvSpawn, EvExit:
			if !ev.Thread.Valid() {
				return fmt.Errorf("trace: event %d: %v of invalid thread %v", i, ev.Kind, ev.Thread)
			}
		case EvShare:
			if !ev.From.Valid() || !ev.To.Valid() {
				return fmt.Errorf("trace: event %d: share edge with invalid endpoint %v -> %v",
					i, ev.From, ev.To)
			}
			if err := model.CheckSharing(ev.Q); err != nil {
				return fmt.Errorf("trace: event %d: %w", i, err)
			}
		case EvInterval:
			iv := ev.Interval
			if iv.CPU < 0 || iv.CPU >= r.NCPU {
				return fmt.Errorf("trace: event %d: interval on cpu %d of %d", i, iv.CPU, r.NCPU)
			}
			if !iv.Thread.Valid() {
				return fmt.Errorf("trace: event %d: interval for invalid thread %v", i, iv.Thread)
			}
			if iv.BlockMisses < iv.DispatchMisses {
				return fmt.Errorf("trace: event %d: miss count runs backward (%d -> %d)",
					i, iv.DispatchMisses, iv.BlockMisses)
			}
			if iv.DispatchMisses < lastMiss[iv.CPU] {
				return fmt.Errorf("trace: event %d: cpu %d miss count not monotonic (%d after %d)",
					i, iv.CPU, iv.DispatchMisses, lastMiss[iv.CPU])
			}
			if iv.EndCycles < iv.StartCycles {
				return fmt.Errorf("trace: event %d: cycle window runs backward (%d -> %d)",
					i, iv.StartCycles, iv.EndCycles)
			}
			if iv.StartCycles < lastCycle[iv.CPU] {
				return fmt.Errorf("trace: event %d: cpu %d clock not monotonic (%d after %d)",
					i, iv.CPU, iv.StartCycles, lastCycle[iv.CPU])
			}
			lastMiss[iv.CPU] = iv.BlockMisses
			lastCycle[iv.CPU] = iv.EndCycles
		default:
			return fmt.Errorf("trace: event %d: unknown kind %d", i, uint8(ev.Kind))
		}
	}
	return nil
}

// checkPow2 validates a geometry field: zero (absent) is allowed, any
// other value must be a power of two.
func checkPow2(what string, v uint64) error {
	if v != 0 && v&(v-1) != 0 {
		return fmt.Errorf("trace: recording %s %d is not a power of two", what, v)
	}
	return nil
}

// Intervals returns just the interval records, in order.
func (r *Recording) Intervals() []Interval {
	var out []Interval
	for _, ev := range r.Events {
		if ev.Kind == EvInterval {
			out = append(out, ev.Interval)
		}
	}
	return out
}

// Save writes the recording as JSON, stamped with the current format
// version.
func (r *Recording) Save(w io.Writer) error {
	if r.Version == 0 {
		r.Version = CurrentVersion
	}
	enc := json.NewEncoder(w)
	return enc.Encode(r)
}

// Load reads a recording written by Save and validates it. Decode
// failures — truncated files (short reads), bit flips that corrupt the
// JSON, type mismatches — are reported with the byte offset the decoder
// had reached, so a damaged recording can be located; an unexpected EOF
// is called out as a truncation explicitly.
func Load(rd io.Reader) (*Recording, error) {
	dec := json.NewDecoder(rd)
	var r Recording
	if err := dec.Decode(&r); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("trace: recording truncated at byte offset %d: %w", dec.InputOffset(), err)
		}
		return nil, fmt.Errorf("trace: decoding recording at byte offset %d: %w", dec.InputOffset(), err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Recorder accumulates a run's event stream. Wire its Observe method
// to the runtime's OnEvent hook; the geometry header comes from the
// platform the run executes on.
type Recorder struct {
	rec Recording
}

// NewRecorder starts a recording with the given header.
func NewRecorder(policy string, ncpu, cacheLines int, lineBytes, pageBytes uint64, threshold float64) *Recorder {
	return &Recorder{rec: Recording{
		Version:        CurrentVersion,
		Policy:         policy,
		NCPU:           ncpu,
		CacheLines:     cacheLines,
		LineBytes:      lineBytes,
		PageBytes:      pageBytes,
		ThresholdLines: threshold,
	}}
}

// SetTopology stamps the recording with the run's canonical cache
// topology (header provenance; empty means private-dm).
func (r *Recorder) SetTopology(spec string) { r.rec.Topology = spec }

// Observe appends one event. It is the OnEvent hook target.
func (r *Recorder) Observe(ev Event) { r.rec.Events = append(r.rec.Events, ev) }

// Recording returns the accumulated recording. The recorder keeps
// ownership; callers should be done observing.
func (r *Recorder) Recording() *Recording { return &r.rec }
