package trace

import (
	"testing"

	"repro/internal/mem"
)

var region = mem.Range{Base: 0x10000, Len: 1 << 20}

func emitAll(g *Gen, budget int) mem.Batch {
	b, _ := g.Emit(nil, budget)
	return b
}

func TestBudgetHonoured(t *testing.T) {
	g := NewGen(Uniform(region), 1)
	b, compute := g.Emit(nil, 10000)
	if refs := b.Refs(); refs < 10000 || refs > 11000 {
		t.Errorf("refs = %d, want ~10000", refs)
	}
	if compute == 0 {
		t.Error("no compute interleave despite ComputePerRef=1")
	}
}

func TestAccessesStayInRegion(t *testing.T) {
	pats := []Pattern{
		Uniform(region),
		{Fresh: region, MeanRunWords: 6, ComputePerRef: 2},
		{Fresh: region, Sequential: true, MeanRunWords: 40},
		{Fresh: region, MeanRunWords: 4, Hot: mem.Range{Base: region.Base, Len: 4096}, PHot: 0.5},
		{Fresh: region, MeanRunWords: 1, PConflict: 0.5, ConflictStride: 8192, ConflictSpan: 1 << 19},
	}
	for i, p := range pats {
		g := NewGen(p, uint64(i+1))
		for _, a := range emitAll(g, 20000) {
			lo := a.Base
			hi := a.Base + mem.Addr(int64(a.Count-1)*int64(a.Stride)) + mem.Addr(a.Size)
			if lo < region.Base || hi > region.End() {
				t.Fatalf("pattern %d escapes region: %+v", i, a)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := Pattern{Fresh: region, MeanRunWords: 5, WriteFrac: 0.3, ComputePerRef: 1.5}
	a, ca := NewGen(p, 9).Emit(nil, 5000)
	b, cb := NewGen(p, 9).Emit(nil, 5000)
	if ca != cb || len(a) != len(b) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", len(a), ca, len(b), cb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("batch diverged at %d", i)
		}
	}
}

func TestMeanRunLength(t *testing.T) {
	p := Pattern{Fresh: region, MeanRunWords: 6}
	g := NewGen(p, 3)
	b := emitAll(g, 200000)
	var total int64
	for _, a := range b {
		total += int64(a.Count)
	}
	got := float64(total) / float64(len(b))
	if got < 5 || got > 7 {
		t.Errorf("mean run length = %v, want ~6", got)
	}
}

func TestSequentialSweepAdvances(t *testing.T) {
	p := Pattern{Fresh: region, Sequential: true, MeanRunWords: 8}
	g := NewGen(p, 1)
	b := emitAll(g, 1000)
	// Runs must be in ascending address order until wraparound.
	prev := b[0].Base
	for _, a := range b[1:] {
		if a.Base < prev { // wrapped
			if a.Base != region.Base {
				t.Fatalf("wrap did not return to region base: %#x", uint64(a.Base))
			}
		}
		prev = a.Base
	}
}

func TestConflictWalkConcentratesSets(t *testing.T) {
	// With page-stride conflicts, the distinct line addresses visited
	// must be few (one line per stride step within the span).
	p := Pattern{
		Fresh: region, MeanRunWords: 1,
		PConflict: 1, ConflictStride: 8192, ConflictSpan: 1 << 19,
	}
	g := NewGen(p, 5)
	lines := map[mem.Addr]bool{}
	for _, a := range emitAll(g, 10000) {
		lines[mem.LineAddr(a.Base, 64)] = true
	}
	want := int(uint64(1<<19) / 8192)
	if len(lines) != want {
		t.Errorf("distinct conflict lines = %d, want %d", len(lines), want)
	}
}

func TestWriteFraction(t *testing.T) {
	p := Pattern{Fresh: region, MeanRunWords: 1, WriteFrac: 0.25}
	g := NewGen(p, 7)
	writes, total := 0, 0
	for _, a := range emitAll(g, 100000) {
		total++
		if a.Write {
			writes++
		}
	}
	frac := float64(writes) / float64(total)
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("write fraction = %v, want ~0.25", frac)
	}
}

func TestHotRunsLandInHot(t *testing.T) {
	hot := mem.Range{Base: region.Base + 4096, Len: 8192}
	p := Pattern{Fresh: region, MeanRunWords: 2, Hot: hot, PHot: 1}
	g := NewGen(p, 2)
	for _, a := range emitAll(g, 5000) {
		if a.Base < hot.Base || a.Base >= hot.End() {
			t.Fatalf("hot run outside hot region: %+v", a)
		}
	}
}

func TestPatternValidation(t *testing.T) {
	bads := []Pattern{
		{},
		{Fresh: region, MeanRunWords: 0},
		{Fresh: region, MeanRunWords: 1, PHot: 0.5},                 // no hot region
		{Fresh: region, MeanRunWords: 1, PHot: 0.7, PConflict: 0.5}, // mix > 1
		{Fresh: region, MeanRunWords: 1, PConflict: 0.5},            // no stride
	}
	for i, p := range bads {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad pattern %d accepted", i)
				}
			}()
			NewGen(p, 1)
		}()
	}
}

func TestUsablePerPageConfinement(t *testing.T) {
	p := Pattern{
		Fresh: region, Sequential: true, MeanRunWords: 16,
		UsablePerPage: 2048, PageBytes: 8192,
	}
	g := NewGen(p, 3)
	for _, a := range emitAll(g, 50000) {
		start := uint64(a.Base - region.Base)
		end := start + uint64(a.Count-1)*uint64(a.Stride) + uint64(a.Size)
		if start%8192 >= 2048 || (end-1)%8192 >= 2048 {
			t.Fatalf("access escapes the usable prefix: %+v (offsets %d..%d)", a, start%8192, (end-1)%8192)
		}
	}
}

func TestUsablePerPageCoversAllPages(t *testing.T) {
	p := Pattern{
		Fresh: region, Sequential: true, MeanRunWords: 8,
		UsablePerPage: 1024,
	}
	g := NewGen(p, 9)
	pages := map[uint64]bool{}
	for _, a := range emitAll(g, 400000) {
		pages[uint64(a.Base-region.Base)/8192] = true
	}
	total := int(region.Len / 8192)
	if len(pages) < total*9/10 {
		t.Errorf("sweep covered only %d of %d pages", len(pages), total)
	}
}

func TestUsablePerPageValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UsablePerPage > PageBytes accepted")
		}
	}()
	NewGen(Pattern{Fresh: region, MeanRunWords: 1, UsablePerPage: 9000, PageBytes: 8192}, 1)
}
