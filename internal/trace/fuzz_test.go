package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorruptCorpusIsRejectedDescriptively drives every corrupted
// recording in testdata/corrupt through Load: truncations, bit flips,
// version skew, and field-out-of-range damage must all come back as
// descriptive errors — never a panic, never a silently accepted
// garbage recording.
func TestCorruptCorpusIsRejectedDescriptively(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corrupt", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("corpus has only %d files — testdata/corrupt missing?", len(files))
	}
	// Damage classes with a specific expected diagnosis.
	wantSubstring := map[string]string{
		"truncated.json":         "truncated at byte offset",
		"version-skew.json":      "version",
		"ncpu-out-of-range.json": "CPUs",
		"interval-backward.json": "backward",
		"type-skew.json":         "byte offset",
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Load(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: corrupted recording accepted: %+v", filepath.Base(path), rec)
			continue
		}
		if !strings.HasPrefix(err.Error(), "trace:") {
			t.Errorf("%s: error %q lacks the trace: prefix", filepath.Base(path), err)
		}
		if want, ok := wantSubstring[filepath.Base(path)]; ok && !strings.Contains(err.Error(), want) {
			t.Errorf("%s: error %q does not mention %q", filepath.Base(path), err, want)
		}
	}
}

func TestValidCorpusLoads(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "valid.json"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("valid corpus recording rejected: %v", err)
	}
	if rec.Version != CurrentVersion || rec.NCPU != 2 || len(rec.Events) != 4 {
		t.Errorf("loaded recording: version=%d ncpu=%d events=%d", rec.Version, rec.NCPU, len(rec.Events))
	}
}

// FuzzLoadRecording hammers the decoder with arbitrary bytes, seeded
// with the valid recording and every corrupted variant. Properties: no
// panic on any input, and any accepted recording round-trips — it can
// be saved and reloaded, and the reload is accepted too (so replay can
// trust what Load hands it).
func FuzzLoadRecording(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "corrupt", "*"))
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, filepath.Join("testdata", "valid.json"))
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Load(bytes.NewReader(data))
		if err != nil {
			if rec != nil {
				t.Fatal("Load returned both a recording and an error")
			}
			return
		}
		if err := rec.Validate(); err != nil {
			t.Fatalf("Load accepted a recording Validate rejects: %v", err)
		}
		var buf bytes.Buffer
		if err := rec.Save(&buf); err != nil {
			t.Fatalf("accepted recording does not save: %v", err)
		}
		if _, err := Load(&buf); err != nil {
			t.Fatalf("accepted recording does not reload: %v", err)
		}
	})
}
