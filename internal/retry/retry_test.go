package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestScheduleShape pins the structural properties of the backoff
// schedule: length, exponential growth toward the cap under no jitter,
// and the jitter window around each raw delay.
func TestScheduleShape(t *testing.T) {
	p := Policy{Attempts: 6, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond,
		Factor: 2, Jitter: NoJitter}
	got := p.Schedule()
	want := []time.Duration{10, 20, 40, 80, 80} // ms: capped at 80
	if len(got) != len(want) {
		t.Fatalf("schedule has %d delays, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Errorf("delay[%d] = %v, want %v", i, got[i], want[i]*time.Millisecond)
		}
	}

	// With jitter j, each delay must land in [raw·(1−j), raw).
	j := 0.5
	pj := Policy{Attempts: 6, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond,
		Factor: 2, Jitter: j, Seed: 7}
	for i, d := range pj.Schedule() {
		raw := want[i] * time.Millisecond
		lo := time.Duration(float64(raw) * (1 - j))
		if d < lo || d > raw {
			t.Errorf("jittered delay[%d] = %v outside [%v, %v]", i, d, lo, raw)
		}
	}
}

// TestScheduleDeterministic pins that the schedule is a pure function
// of the policy: same seed same bytes, different seed different bytes.
func TestScheduleDeterministic(t *testing.T) {
	p := Policy{Attempts: 8, Seed: 42}
	a, b := p.Schedule(), p.Schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same policy produced different schedules: %v vs %v", a, b)
		}
	}
	p2 := p
	p2.Seed = 43
	c := p2.Schedule()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical schedules %v", a)
	}
}

// TestDoRetriesThenSucceeds pins the basic loop: transient failures are
// retried, success stops the loop, and the op sees every attempt.
func TestDoRetriesThenSucceeds(t *testing.T) {
	calls := 0
	err := do(context.Background(), Policy{Attempts: 5}, func(context.Context, int) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	}, func(context.Context, time.Duration) error { return nil })
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	if calls != 3 {
		t.Fatalf("op called %d times, want 3", calls)
	}
}

// TestDoExhausted pins the terminal error: all attempts spent, the last
// op error wrapped and unwrappable.
func TestDoExhausted(t *testing.T) {
	sentinel := errors.New("disk on fire")
	calls := 0
	err := do(context.Background(), Policy{Attempts: 3}, func(context.Context, int) error {
		calls++
		return sentinel
	}, func(context.Context, time.Duration) error { return nil })
	if calls != 3 {
		t.Fatalf("op called %d times, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("Do = %v, want wrapped %v", err, sentinel)
	}
}

// TestDoPermanent pins that a Permanent error stops the loop at once
// and unwraps to the original.
func TestDoPermanent(t *testing.T) {
	sentinel := errors.New("no such session")
	calls := 0
	err := do(context.Background(), Policy{Attempts: 5}, func(context.Context, int) error {
		calls++
		return Permanent(sentinel)
	}, func(context.Context, time.Duration) error { return nil })
	if calls != 1 {
		t.Fatalf("op called %d times, want 1", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("Do = %v, want %v", err, sentinel)
	}
}

// TestDoContextCancelledMidWait pins cancellation during the backoff
// wait: Do returns promptly with the context's error and the last op
// error still visible.
func TestDoContextCancelledMidWait(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Do(ctx, Policy{Attempts: 4, Base: 10 * time.Second, Cap: 10 * time.Second},
		func() error { return errors.New("transient") })
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Do blocked %v after cancellation", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
}

// TestDoWithAttemptNumbering pins the 1-based attempt index: the op
// sees 1, 2, 3, ... in order, one per try.
func TestDoWithAttemptNumbering(t *testing.T) {
	var seen []int
	err := do(context.Background(), Policy{Attempts: 4}, func(_ context.Context, attempt int) error {
		seen = append(seen, attempt)
		if attempt < 3 {
			return errors.New("transient")
		}
		return nil
	}, func(context.Context, time.Duration) error { return nil })
	if err != nil {
		t.Fatalf("DoWithAttempt = %v, want nil", err)
	}
	want := []int{1, 2, 3}
	if len(seen) != len(want) {
		t.Fatalf("attempts seen = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("attempts seen = %v, want %v", seen, want)
		}
	}
}

// TestDoWithAttemptTimeout pins the per-attempt bound: a hung attempt
// is cancelled on its own and the next attempt starts with a fresh,
// live context — the overall operation still succeeds.
func TestDoWithAttemptTimeout(t *testing.T) {
	p := Policy{Attempts: 3, Base: time.Millisecond, Cap: time.Millisecond,
		Jitter: NoJitter, AttemptTimeout: 20 * time.Millisecond}
	calls := 0
	err := p.DoWithAttempt(context.Background(), func(ctx context.Context, attempt int) error {
		calls++
		if attempt == 1 {
			// Simulate a hung transfer: block until the per-attempt
			// context expires.
			<-ctx.Done()
			return ctx.Err()
		}
		if err := ctx.Err(); err != nil {
			return Permanent(errors.New("fresh attempt saw a dead context"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("DoWithAttempt = %v, want nil", err)
	}
	if calls != 2 {
		t.Fatalf("op called %d times, want 2", calls)
	}
}

// TestDoWithAttemptTimeoutRespectsParent pins that the per-attempt
// context still inherits the caller's cancellation.
func TestDoWithAttemptTimeoutRespectsParent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Attempts: 5, Base: time.Millisecond, Cap: time.Millisecond,
		Jitter: NoJitter, AttemptTimeout: 10 * time.Second}
	calls := 0
	err := p.DoWithAttempt(ctx, func(actx context.Context, attempt int) error {
		calls++
		cancel()
		<-actx.Done() // parent cancellation must propagate promptly
		return actx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DoWithAttempt = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("op called %d times after parent cancel, want 1", calls)
	}
}

// TestDoContextAlreadyCancelled pins that a dead context never runs the
// op at all.
func TestDoContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, Policy{}, func() error { calls++; return nil })
	if calls != 0 {
		t.Fatalf("op called %d times on a cancelled context, want 0", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
}
