// Package retry is the repository's IO retry helper: capped
// exponential backoff with deterministic, seedable jitter. The session
// server wraps every snapshot evict/resume and manifest write in it so
// a transiently failing disk (NFS hiccup, ENOSPC race with a cleaner,
// antivirus lock on the temp file) degrades to a short stall instead of
// a lost session.
//
// The delay schedule is a pure function of (Policy, attempt): nothing
// in the decision path reads wall time or global randomness, so tests
// can assert the exact schedule a seed produces, and two processes
// started with different seeds decorrelate their retry storms. Wall
// time enters only at the waiting step, which is also where context
// cancellation is honored.
package retry

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/xrand"
)

// Policy shapes a retry schedule. The zero value selects the documented
// defaults; all fields are optional.
type Policy struct {
	// Attempts is the maximum number of tries, including the first
	// (default 4; values < 1 mean the default).
	Attempts int
	// Base is the delay before the second attempt (default 5ms).
	Base time.Duration
	// Cap bounds every delay (default 500ms).
	Cap time.Duration
	// Factor multiplies the delay between attempts (default 2; values
	// < 1 mean the default).
	Factor float64
	// Jitter is the randomized fraction of each delay in [0, 1]: a
	// delay d becomes d·(1−Jitter) + d·Jitter·u with u ∈ [0, 1) drawn
	// from the seeded stream. 0 disables jitter; default 0.5. Set the
	// sign-only sentinel NoJitter for an exact exponential schedule.
	Jitter float64
	// Seed seeds the jitter stream. The schedule is a pure function of
	// (Policy, attempt), so equal seeds reproduce equal schedules.
	Seed uint64
	// AttemptTimeout bounds each individual attempt: DoWithAttempt
	// derives a per-attempt context from the caller's, cancelled after
	// this duration. A hung attempt (stalled transfer, wedged fsync)
	// then fails on its own and the next attempt starts fresh, without
	// cancelling the whole operation. 0 disables the bound.
	AttemptTimeout time.Duration
}

// NoJitter is a Jitter sentinel selecting the exact exponential
// schedule (Jitter 0 means "default", so an explicit off needs a
// marker).
const NoJitter = -1.0

func (p Policy) withDefaults() Policy {
	if p.Attempts < 1 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = 5 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 500 * time.Millisecond
	}
	if p.Factor < 1 {
		p.Factor = 2
	}
	switch {
	case p.Jitter == NoJitter || p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter == 0:
		p.Jitter = 0.5
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// Schedule returns the complete delay schedule the policy produces:
// element i is the wait before attempt i+2 (the first attempt waits
// nothing), so the slice has Attempts−1 elements. Deterministic: equal
// policies (including Seed) return equal schedules.
func (p Policy) Schedule() []time.Duration {
	p = p.withDefaults()
	rng := xrand.New(p.Seed)
	out := make([]time.Duration, 0, p.Attempts-1)
	d := float64(p.Base)
	for i := 1; i < p.Attempts; i++ {
		raw := d
		if raw > float64(p.Cap) {
			raw = float64(p.Cap)
		}
		// Jitter draws exactly one variate per delay so the stream
		// position — and therefore the schedule — depends only on the
		// attempt index.
		u := rng.Float64()
		jittered := raw*(1-p.Jitter) + raw*p.Jitter*u
		out = append(out, time.Duration(jittered))
		d *= p.Factor
	}
	return out
}

// PermanentError marks an error as not retryable; Do stops immediately
// and returns the wrapped error.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return e.Err.Error() }
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err so Do gives up without further attempts. A nil
// err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// Do runs op until it succeeds, permanently fails, exhausts the
// policy's attempts, or ctx is cancelled (including mid-wait). The
// returned error is the last op error, wrapped with the attempt count;
// a cancellation mid-wait returns ctx's error wrapped around the last
// op error so both causes stay visible.
func Do(ctx context.Context, p Policy, op func() error) error {
	return do(ctx, p, func(context.Context, int) error { return op() }, sleep)
}

// DoWithAttempt is Do for operations that want to know which attempt
// they are (1-based, for logging or labeling) and to honor a
// per-attempt deadline: op receives a context derived from ctx and
// bounded by Policy.AttemptTimeout (when set). An attempt that outlives
// its bound is cancelled individually; the schedule then proceeds to
// the next attempt as for any other failure.
func (p Policy) DoWithAttempt(ctx context.Context, op func(ctx context.Context, attempt int) error) error {
	return do(ctx, p, op, sleep)
}

// do is DoWithAttempt with the waiting step injectable for tests.
func do(ctx context.Context, p Policy, op func(context.Context, int) error, wait func(context.Context, time.Duration) error) error {
	p = p.withDefaults()
	delays := p.Schedule()
	var last error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return fmt.Errorf("retry: cancelled after %d attempts: %w (last error: %v)", attempt, err, last)
			}
			return fmt.Errorf("retry: %w", err)
		}
		err := runAttempt(ctx, p.AttemptTimeout, attempt+1, op)
		if err == nil {
			return nil
		}
		var perm *PermanentError
		if errors.As(err, &perm) {
			return perm.Err
		}
		last = err
		if attempt == p.Attempts-1 {
			break
		}
		if err := wait(ctx, delays[attempt]); err != nil {
			return fmt.Errorf("retry: cancelled during backoff after %d attempts: %w (last error: %v)", attempt+1, err, last)
		}
	}
	return fmt.Errorf("retry: %d attempts failed: %w", p.Attempts, last)
}

// runAttempt invokes one attempt under its per-attempt bound.
func runAttempt(ctx context.Context, timeout time.Duration, attempt int, op func(context.Context, int) error) error {
	if timeout <= 0 {
		return op(ctx, attempt)
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	return op(actx, attempt)
}

// sleep waits d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
