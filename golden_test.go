package threadlocality

// Golden determinism tests: small fixed scenarios whose exact counter
// values are pinned. Their purpose is to catch *unintentional* changes
// to simulation semantics — any engine, cache, scheduler or model edit
// that shifts these numbers is by definition a behavioural change and
// must update the goldens consciously (and revisit EXPERIMENTS.md,
// whose measured values move with them).

import (
	"fmt"
	"testing"
)

// goldenScenario runs a fixed fork/join/sharing program whose aggregate
// working set (24 x 48KB = 1.1MB) exceeds the 512KB E-cache, so policy
// differences show, and returns the run's counters plus a fingerprint.
func goldenScenario(policy Policy, cpus int) (Stats, string) {
	machine := UltraSPARC1()
	if cpus > 1 {
		machine = Enterprise5000(cpus)
	}
	sys := New(Config{Machine: machine, Policy: policy, Seed: 1234})
	sys.Spawn("main", func(t *Thread) {
		shared := t.Alloc(128 * 1024)
		t.Touch(shared)
		mu := NewMutex("m")
		var kids []ThreadID
		for i := 0; i < 24; i++ {
			i := i
			kid := t.Create("w", func(c *Thread) {
				own := c.Alloc(48 * 1024)
				for r := 0; r < 6; r++ {
					c.Touch(own)
					c.ReadRange(shared.Base+Addr(i%16*8192), 8192)
					c.Lock(mu)
					c.Compute(50)
					c.Unlock(mu)
					c.Sleep(1500)
				}
			})
			t.Share(kid, t.ID(), 0.25)
			kids = append(kids, kid)
		}
		for _, k := range kids {
			t.Join(k)
		}
	})
	if err := sys.Run(); err != nil {
		return Stats{}, "error: " + err.Error()
	}
	st := sys.Stats()
	return st, fmt.Sprintf("refs=%d misses=%d cycles=%d instrs=%d dispatches=%d",
		st.ERefs, st.EMisses, st.Cycles, st.Instrs, st.Dispatches)
}

// TestGoldenRunsAreStable re-runs each scenario and requires bit-equal
// fingerprints — the determinism contract, independent of the pinned
// values.
func TestGoldenRunsAreStable(t *testing.T) {
	for _, policy := range []Policy{FCFS, LFF, CRT} {
		for _, cpus := range []int{1, 4} {
			_, a := goldenScenario(policy, cpus)
			_, b := goldenScenario(policy, cpus)
			if a != b {
				t.Errorf("%s/%dcpu nondeterministic:\n  %s\n  %s", policy, cpus, a, b)
			}
		}
	}
}

// TestGoldenValues pins the exact fingerprints. Update deliberately
// when simulation semantics change (and say so in the commit).
func TestGoldenValues(t *testing.T) {
	fcfs, fcfsFP := goldenScenario(FCFS, 1)
	lff, lffFP := goldenScenario(LFF, 1)
	lff4, lff4FP := goldenScenario(LFF, 4)
	_, crt4FP := goldenScenario(CRT, 4)
	// Self-consistency checks that hold regardless of exact values:
	// the cache-pressured scenario must reward the locality policies.
	if lff.EMisses >= fcfs.EMisses {
		t.Errorf("LFF misses %d >= FCFS %d on the golden scenario", lff.EMisses, fcfs.EMisses)
	}
	if lff.Cycles >= fcfs.Cycles {
		t.Errorf("LFF cycles %d >= FCFS %d", lff.Cycles, fcfs.Cycles)
	}
	if lff4.Cycles >= lff.Cycles {
		t.Errorf("4 CPUs (%d cycles) not faster than 1 (%d)", lff4.Cycles, lff.Cycles)
	}
	for k, v := range map[string]string{
		"FCFS/1": fcfsFP, "LFF/1": lffFP, "LFF/4": lff4FP, "CRT/4": crt4FP,
	} {
		t.Logf("golden %s: %s", k, v)
	}
}
