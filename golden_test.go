package threadlocality

// Golden determinism tests: small fixed scenarios whose exact counter
// values are pinned. Their purpose is to catch *unintentional* changes
// to simulation semantics — any engine, cache, scheduler or model edit
// that shifts these numbers is by definition a behavioural change and
// must update the goldens consciously (and revisit EXPERIMENTS.md,
// whose measured values move with them).

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/platform/sim"
	"repro/internal/rt"
	"repro/internal/workloads"
)

// goldenScenario runs a fixed fork/join/sharing program whose aggregate
// working set (24 x 48KB = 1.1MB) exceeds the 512KB E-cache, so policy
// differences show, and returns the run's counters plus a fingerprint.
func goldenScenario(policy Policy, cpus int) (Stats, string) {
	_, st, fp := goldenScenarioObs(policy, cpus, ObsOptions{})
	return st, fp
}

// goldenScenarioObs is goldenScenario with an observability level, for
// pinning that observation never changes the observed run.
func goldenScenarioObs(policy Policy, cpus int, o ObsOptions) (*System, Stats, string) {
	machine := UltraSPARC1()
	if cpus > 1 {
		machine = Enterprise5000(cpus)
	}
	sys, err := New(Config{Machine: machine, Policy: policy, Seed: 1234, Observability: o})
	if err != nil {
		return nil, Stats{}, "error: " + err.Error()
	}
	sys.Spawn("main", func(t *Thread) {
		shared := t.Alloc(128 * 1024)
		t.Touch(shared)
		mu := NewMutex("m")
		var kids []ThreadID
		for i := 0; i < 24; i++ {
			i := i
			kid := t.Create("w", func(c *Thread) {
				own := c.Alloc(48 * 1024)
				for r := 0; r < 6; r++ {
					c.Touch(own)
					c.ReadRange(shared.Base+Addr(i%16*8192), 8192)
					c.Lock(mu)
					c.Compute(50)
					c.Unlock(mu)
					c.Sleep(1500)
				}
			})
			t.Share(kid, t.ID(), 0.25)
			kids = append(kids, kid)
		}
		for _, k := range kids {
			t.Join(k)
		}
	})
	if err := sys.Run(); err != nil {
		return nil, Stats{}, "error: " + err.Error()
	}
	st := sys.Stats()
	return sys, st, fmt.Sprintf("refs=%d misses=%d cycles=%d instrs=%d dispatches=%d",
		st.ERefs, st.EMisses, st.Cycles, st.Instrs, st.Dispatches)
}

// TestGoldenUnchangedByObservation pins the telemetry layer's core
// contract: attaching full tracing to a golden scenario must not move a
// single counter. If this fails, an emission site is perturbing the
// simulation (reading state it should only copy, or ordering work
// differently when an observer is present).
func TestGoldenUnchangedByObservation(t *testing.T) {
	for _, policy := range []Policy{FCFS, LFF, CRT} {
		for _, cpus := range []int{1, 4} {
			_, bare := goldenScenario(policy, cpus)
			sys, _, traced := goldenScenarioObs(policy, cpus, ObsOptions{Level: ObsTrace})
			if bare != traced {
				t.Errorf("%s/%dcpu: tracing changed the run:\n  bare:   %s\n  traced: %s",
					policy, cpus, bare, traced)
			}
			o := sys.Observer()
			if o == nil {
				t.Fatalf("%s/%dcpu: traced system has no observer", policy, cpus)
			}
			var events uint64
			for cpu := 0; cpu < cpus; cpu++ {
				events += o.Ring(cpu).Total()
			}
			if events == 0 {
				t.Errorf("%s/%dcpu: observer recorded nothing", policy, cpus)
			}
		}
	}
}

// TestGoldenRunsAreStable re-runs each scenario and requires bit-equal
// fingerprints — the determinism contract, independent of the pinned
// values.
func TestGoldenRunsAreStable(t *testing.T) {
	for _, policy := range []Policy{FCFS, LFF, CRT} {
		for _, cpus := range []int{1, 4} {
			_, a := goldenScenario(policy, cpus)
			_, b := goldenScenario(policy, cpus)
			if a != b {
				t.Errorf("%s/%dcpu nondeterministic:\n  %s\n  %s", policy, cpus, a, b)
			}
		}
	}
}

// TestGoldenValues pins the exact fingerprints. Update deliberately
// when simulation semantics change (and say so in the commit).
func TestGoldenValues(t *testing.T) {
	fcfs, fcfsFP := goldenScenario(FCFS, 1)
	lff, lffFP := goldenScenario(LFF, 1)
	lff4, lff4FP := goldenScenario(LFF, 4)
	_, crt4FP := goldenScenario(CRT, 4)
	// Self-consistency checks that hold regardless of exact values:
	// the cache-pressured scenario must reward the locality policies.
	if lff.EMisses >= fcfs.EMisses {
		t.Errorf("LFF misses %d >= FCFS %d on the golden scenario", lff.EMisses, fcfs.EMisses)
	}
	if lff.Cycles >= fcfs.Cycles {
		t.Errorf("LFF cycles %d >= FCFS %d", lff.Cycles, fcfs.Cycles)
	}
	if lff4.Cycles >= lff.Cycles {
		t.Errorf("4 CPUs (%d cycles) not faster than 1 (%d)", lff4.Cycles, lff.Cycles)
	}
	for k, v := range map[string]string{
		"FCFS/1": fcfsFP, "LFF/1": lffFP, "LFF/4": lff4FP, "CRT/4": crt4FP,
	} {
		t.Logf("golden %s: %s", k, v)
	}
}

// --- Differential test: facade vs direct platform path ----------------
//
// The System facade and a hand-assembled machine/sim/rt stack must be
// the same computation: identical counters and an identical dispatch
// timeline. This pins the platform refactor as a pure seam — the sim
// backend adds no behaviour over what New(Config{...}) always did.

// dispatchTimeline fingerprints a run: every context switch as
// (cycle, cpu, thread, name), plus the stats fingerprint.
func diffFingerprint(t *testing.T, build func(t *testing.T) (*rt.Engine, *machine.Machine), spawn func(e *rt.Engine)) string {
	t.Helper()
	e, m := build(t)
	var sb strings.Builder
	e.OnDispatch = func(cpu int, tid ThreadID, name string) {
		fmt.Fprintf(&sb, "%d/%d/%v/%s\n", m.CPU(cpu).Cycles, cpu, tid, name)
	}
	spawn(e)
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	refs, _, misses := m.Totals()
	fmt.Fprintf(&sb, "refs=%d misses=%d cycles=%d instrs=%d\n",
		refs, misses, m.MaxCycles(), m.TotalInstrs())
	return sb.String()
}

func TestFacadeAndDirectPlatformPathsAreIdentical(t *testing.T) {
	apps := map[string]func(e *rt.Engine){
		"tasks": func(e *rt.Engine) {
			workloads.SpawnTasks(e, workloads.TasksConfig{Tasks: 12, FootprintLines: 40, Periods: 4})
		},
		"merge": func(e *rt.Engine) { workloads.SpawnMerge(e, workloads.MergeConfig{Elements: 2000, Leaf: 125}) },
	}
	for name, spawn := range apps {
		viaFacade := diffFingerprint(t, func(t *testing.T) (*rt.Engine, *machine.Machine) {
			sys, err := New(Config{Machine: Enterprise5000(4), Policy: LFF, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			return sys.Engine(), sys.Machine()
		}, spawn)
		viaPlatform := diffFingerprint(t, func(t *testing.T) (*rt.Engine, *machine.Machine) {
			m := machine.New(machine.Enterprise5000(4))
			e, err := rt.New(sim.New(m), rt.Options{Policy: "LFF", Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			return e, m
		}, spawn)
		if viaFacade != viaPlatform {
			t.Errorf("%s: facade and direct platform runs diverge\nfacade:\n%s\ndirect:\n%s",
				name, viaFacade, viaPlatform)
		}
		if !strings.Contains(viaFacade, "refs=") || strings.Count(viaFacade, "\n") < 10 {
			t.Errorf("%s: fingerprint suspiciously small:\n%s", name, viaFacade)
		}
	}
}
