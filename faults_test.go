package threadlocality

// Fault-matrix tests: every fault class the faulty platform backend can
// inject — counter wrap, stuck counters, multiplexing dropouts, spike
// corruption, clock skew, and all of them at once — is driven through
// the full engine. The runtime's contract under lying instrumentation
// is graceful degradation, never collapse: runs complete, scheduler
// invariants and priority finiteness hold, persistent garbage
// quarantines the counter (degrading that CPU to the annotation-free
// baseline), and everything stays bit-for-bit deterministic, including
// across experiment-driver worker counts.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/platform/faulty"
	"repro/internal/platform/replay"
	"repro/internal/platform/sim"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// faultCase is one cell of the fault matrix.
type faultCase struct {
	name string
	cfg  faulty.Config
	// wantRejected: the schedule is aggressive enough that the
	// sanitizer must reject at least one reading somewhere.
	wantRejected bool
	// wantQuarantine: rejections are persistent enough that at least
	// one CPU must enter quarantine at some point.
	wantQuarantine bool
}

// faultMatrix holds schedules tuned so each class actually fires on the
// scenario below (per-CPU counters reach ~10^5 reads there, with a few
// thousand scheduling intervals per CPU).
var faultMatrix = []faultCase{
	{name: "wrap", cfg: faulty.Config{Seed: 3, WrapBits: 8},
		wantRejected: true, wantQuarantine: true},
	{name: "stuck", cfg: faulty.Config{Seed: 3, StuckEvery: 50000, StuckLen: 40000},
		wantRejected: true, wantQuarantine: true},
	{name: "dropout", cfg: faulty.Config{Seed: 3, DropEvery: 50000, DropLen: 40000},
		wantRejected: true, wantQuarantine: true},
	{name: "spike", cfg: faulty.Config{Seed: 3, SpikeEvery: 30000, SpikeDelta: 1 << 24},
		wantRejected: true},
	{name: "skew", cfg: faulty.Config{Seed: 3, SkewCycles: 1 << 20}},
	{name: "all", cfg: faulty.Config{Seed: 3, WrapBits: 20,
		StuckEvery: 50000, StuckLen: 9000, DropEvery: 70000, DropLen: 8000,
		SpikeEvery: 60000, SpikeDelta: 1 << 22, SkewCycles: 100000},
		wantRejected: true},
}

// runFaultScenario runs the tasks application on a 4-CPU machine with
// the given injection schedule and returns the run fingerprint
// (dispatch timeline + counters + health) and the post-run engine.
func runFaultScenario(cfg faulty.Config) (string, *rt.Engine, error) {
	app, err := workloads.SchedAppByName("tasks")
	if err != nil {
		return "", nil, err
	}
	m := machine.New(machine.Enterprise5000(4))
	plat, err := faulty.New(sim.New(m), cfg)
	if err != nil {
		return "", nil, err
	}
	e, err := rt.New(plat, rt.Options{Policy: "LFF", Seed: 42})
	if err != nil {
		return "", nil, err
	}
	var sb strings.Builder
	e.OnDispatch = func(cpu int, tid ThreadID, name string) {
		fmt.Fprintf(&sb, "%d/%d/%v/%s\n", m.CPU(cpu).Cycles, cpu, tid, name)
	}
	app.Spawn(e, 0.25)
	if err := e.Run(context.Background()); err != nil {
		return "", nil, err
	}
	refs, _, misses := m.Totals()
	fmt.Fprintf(&sb, "refs=%d misses=%d cycles=%d\n", refs, misses, m.MaxCycles())
	for _, h := range e.CounterHealth() {
		fmt.Fprintf(&sb, "%s streaks=%d/%d\n", h, h.StreakRejected, h.StreakClean)
	}
	return sb.String(), e, nil
}

func TestFaultMatrix(t *testing.T) {
	for _, fc := range faultMatrix {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			fp, e, err := runFaultScenario(fc.cfg)
			if err != nil {
				t.Fatalf("run failed under %s faults: %v", fc.cfg, err)
			}
			// Scheduler invariants: footprints in range, priorities
			// finite, quarantined heaps empty.
			if err := e.Scheduler().Check(); err != nil {
				t.Errorf("scheduler invariants violated: %v", err)
			}
			health := e.CounterHealth()
			var rejected, quarantines uint64
			for i, h := range health {
				if h.Total() == 0 {
					t.Errorf("cpu%d classified no readings", i)
				}
				rejected += h.Rejected
				quarantines += h.Quarantines
				// The engine mirrors health state into the scheduler
				// after every reading; the two must agree at exit.
				if got := e.Scheduler().Quarantined(i); got != h.Quarantined {
					t.Errorf("cpu%d: scheduler quarantine %v != health %v", i, got, h.Quarantined)
				}
			}
			if fc.wantRejected && rejected == 0 {
				t.Errorf("expected rejected readings under %s faults, got none", fc.name)
			}
			if !fc.wantRejected && fc.name == "skew" && rejected != 0 {
				// Constant skew shifts both ends of every cycle window
				// equally; the sanitizer must not punish it.
				t.Errorf("skew alone caused %d rejections", rejected)
			}
			if fc.wantQuarantine && quarantines == 0 {
				t.Errorf("expected at least one quarantine under %s faults, got none", fc.name)
			}
			// Determinism: the same schedule replays bit-identically.
			fp2, _, err := runFaultScenario(fc.cfg)
			if err != nil {
				t.Fatalf("rerun failed: %v", err)
			}
			if fp != fp2 {
				t.Errorf("%s faults nondeterministic:\n--- first\n%s\n--- second\n%s", fc.name, fp, fp2)
			}
		})
	}
}

// TestFaultMatrixCorruptRecording is the matrix's recording-domain
// fault class: every corrupted recording in the checked-in corpus is
// pushed at the replay stack (the full scheduler/model engine with no
// simulator), which must refuse it with a descriptive error and never
// panic; the intact recording from the same corpus must replay.
func TestFaultMatrixCorruptRecording(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("internal", "trace", "testdata", "corrupt", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("corrupted-recordings corpus has only %d files", len(files))
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		rec, lerr := trace.Load(f)
		f.Close()
		if lerr == nil {
			// Decoding survived; the replay constructor's Validate
			// pre-pass must still refuse the recording.
			if _, rerr := replay.Evaluate(rec); rerr == nil {
				t.Errorf("%s: corrupt recording replayed without error", filepath.Base(path))
			}
			continue
		}
		if !strings.Contains(lerr.Error(), "trace:") {
			t.Errorf("%s: undescriptive error %q", filepath.Base(path), lerr)
		}
	}

	f, err := os.Open(filepath.Join("internal", "trace", "testdata", "valid.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := trace.Load(f)
	if err != nil {
		t.Fatalf("valid corpus recording rejected: %v", err)
	}
	res, err := replay.Evaluate(rec)
	if err != nil {
		t.Fatalf("valid corpus recording does not replay: %v", err)
	}
	if len(res.Intervals) == 0 {
		t.Error("replay of the valid recording predicted no intervals")
	}
}

// TestFaultMatrixDeterministicAcrossWorkers re-runs the whole matrix
// under the experiment driver's worker pool at -j 1 and -j 4 and
// requires identical fingerprints: fault injection must not introduce
// any cross-cell coupling.
func TestFaultMatrixDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix x workers is slow; run without -short")
	}
	collect := func(workers int) []string {
		fps := make([]string, len(faultMatrix))
		err := parallel.ForEach(workers, len(faultMatrix), func(i int) error {
			fp, _, err := runFaultScenario(faultMatrix[i].cfg)
			fps[i] = fp
			return err
		})
		if err != nil {
			t.Fatalf("matrix run with %d workers: %v", workers, err)
		}
		return fps
	}
	seq := collect(1)
	par := collect(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("%s: -j1 and -j4 fingerprints differ", faultMatrix[i].name)
		}
	}
}

// TestFaultyZeroConfigIsBitTransparent pins the differential contract:
// a run through the faulty wrapper with no faults configured is
// event-for-event identical to a run on the bare sim backend — same
// dispatch timeline, same counters, and an all-OK health record.
func TestFaultyZeroConfigIsBitTransparent(t *testing.T) {
	spawn := func(e *rt.Engine) {
		workloads.SpawnTasks(e, workloads.TasksConfig{Tasks: 12, FootprintLines: 40, Periods: 4})
	}
	bare := diffFingerprint(t, func(t *testing.T) (*rt.Engine, *machine.Machine) {
		m := machine.New(machine.Enterprise5000(4))
		e, err := rt.New(sim.New(m), rt.Options{Policy: "LFF", Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return e, m
	}, spawn)
	var wrappedEngine *rt.Engine
	wrapped := diffFingerprint(t, func(t *testing.T) (*rt.Engine, *machine.Machine) {
		m := machine.New(machine.Enterprise5000(4))
		plat, err := faulty.New(sim.New(m), faulty.Config{})
		if err != nil {
			t.Fatal(err)
		}
		e, err := rt.New(plat, rt.Options{Policy: "LFF", Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		wrappedEngine = e
		return e, m
	}, spawn)
	if bare != wrapped {
		t.Errorf("zero-fault wrapper changed the run:\n--- bare\n%s\n--- wrapped\n%s", bare, wrapped)
	}
	for _, h := range wrappedEngine.CounterHealth() {
		if h.Rejected != 0 || h.Quarantines != 0 || h.Quarantined {
			t.Errorf("healthy substrate produced rejections: %s", h)
		}
	}
}
