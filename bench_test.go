package threadlocality

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper, plus microbenchmarks of the hot substrate paths. Run
// everything with
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks run reduced-size configurations per
// iteration so the suite completes quickly; cmd/repro regenerates the
// full-scale numbers.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/inference"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// benchSched is the reduced scheduling configuration for per-iteration
// experiment benchmarks.
var benchSched = experiments.SchedConfig{Scale: 0.08, Seed: 11}

// benchStudy is the reduced footprint-study configuration.
var benchStudy = experiments.StudyConfig{MaxMisses: 4000, Seed: 7}

// --- Table benchmarks -------------------------------------------------

// BenchmarkTable1HierarchyProbe measures the cache hierarchy's
// per-reference cost (the substrate behind every experiment): a mixed
// hit/miss data stream through L1D/E-cache with translation.
func BenchmarkTable1HierarchyProbe(b *testing.B) {
	m := machine.New(machine.UltraSPARC1())
	r := m.Alloc(4<<20, 0)
	batch := mem.Batch{mem.ReadRange(r.Base, 1<<16)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := r.Base + mem.Addr(uint64(i*(1<<16))%(r.Len-(1<<16)))
		batch[0] = mem.ReadRange(base, 1<<16)
		m.Apply(0, 1, batch)
	}
	b.ReportMetric(float64(1<<13), "refs/op")
}

// BenchmarkTable3PriorityUpdate measures the per-update cost of the
// Section 4 priority algebra, the quantity Table 3 bounds: a handful of
// FP instructions per blocking/dependent update, zero for independent
// threads.
func BenchmarkTable3PriorityUpdateLFFBlocking(b *testing.B) {
	mdl := model.New(8192)
	var sink float64
	for i := 0; i < b.N; i++ {
		_, p := (model.LFF{}).Blocking(mdl, 100, 50, uint64(i))
		sink += p
	}
	_ = sink
}

func BenchmarkTable3PriorityUpdateLFFDependent(b *testing.B) {
	mdl := model.New(8192)
	var sink float64
	for i := 0; i < b.N; i++ {
		_, p := (model.LFF{}).Dependent(mdl, 100, 0, 0.5, 50, uint64(i))
		sink += p
	}
	_ = sink
}

func BenchmarkTable3PriorityUpdateCRTBlocking(b *testing.B) {
	mdl := model.New(8192)
	var sink float64
	for i := 0; i < b.N; i++ {
		_, p := (model.CRT{}).Blocking(mdl, 100, 50, uint64(i))
		sink += p
	}
	_ = sink
}

func BenchmarkTable3PriorityUpdateCRTDependent(b *testing.B) {
	mdl := model.New(8192)
	var sink float64
	for i := 0; i < b.N; i++ {
		_, p := (model.CRT{}).Dependent(mdl, 100, 120, 0.5, 50, uint64(i))
		sink += p
	}
	_ = sink
}

// BenchmarkTable5 regenerates the Table 5 summary (CRT vs FCFS on both
// platforms) at reduced scale.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(benchSched)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Render()
	}
}

// --- Figure benchmarks ------------------------------------------------

// BenchmarkFig4RandomWalk regenerates the Figure 4 microbenchmark.
func BenchmarkFig4RandomWalk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4(benchStudy)
		if res.MaxRelError() > 0.15 {
			b.Fatalf("model accuracy regressed: %v", res.MaxRelError())
		}
	}
}

// BenchmarkFig5Footprints regenerates one Figure 5 footprint study
// (barnes, the first application).
func BenchmarkFig5Footprints(b *testing.B) {
	app, err := workloads.StudyAppByName("barnes")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = experiments.StudyFootprint(app, benchStudy)
	}
}

// BenchmarkFig6MPI regenerates one Figure 6 MPI trajectory (ocean).
func BenchmarkFig6MPI(b *testing.B) {
	app, err := workloads.StudyAppByName("ocean")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchStudy
	cfg.MPIWindow = 100_000
	for i := 0; i < b.N; i++ {
		r := experiments.StudyFootprint(app, cfg)
		if r.MPI.Len() == 0 {
			b.Fatal("no MPI windows")
		}
	}
}

// BenchmarkFig7Anomalies regenerates the typechecker overestimation
// study.
func BenchmarkFig7Anomalies(b *testing.B) {
	app, err := workloads.StudyAppByName("typechecker")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r := experiments.StudyFootprint(app, benchStudy)
		if r.Bias <= 0 {
			b.Fatalf("typechecker not overestimated: bias %v", r.Bias)
		}
	}
}

// BenchmarkFig8OneCPU regenerates the Figure 8 policy comparison on the
// uniprocessor at reduced scale.
func BenchmarkFig8OneCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(benchSched); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9EightCPU regenerates the Figure 9 policy comparison on
// the 8-CPU SMP at reduced scale.
func BenchmarkFig9EightCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(benchSched); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9_64CPU runs the Figure 9 grid at 64 simulated CPUs —
// the contention-free-hot-paths scaling check. The interesting number
// is the per-CPU cost relative to BenchmarkFig9EightCPU: the directory,
// the scheduler arena and the engine's clock heap must keep the
// per-simulated-CPU overhead sub-linear as the machine grows.
func BenchmarkFig9_64CPU(b *testing.B) {
	cfg := benchSched
	cfg.CPUs = 64
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9SharedLLC runs the five-policy matrix (FCFS, LFF, CRT
// and the shared-aware variants) on the shared-LLC topology at reduced
// scale — the generic shared lookup path plus the machine-wide miss
// clock, against BenchmarkFig9EightCPU's private fast lanes.
func BenchmarkFig9SharedLLC(b *testing.B) {
	cfg := benchSched
	cfg.Topology = "shared-llc"
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SharedLLCSched(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9CPUSweep runs the Figure 9 grid at each CPU count in
// the space-separated BENCH_NCPU environment variable (for example
// BENCH_NCPU="8 64 256"); it skips when the variable is unset.
// scripts/bench.sh -ncpu drives it.
func BenchmarkFig9CPUSweep(b *testing.B) {
	env := os.Getenv("BENCH_NCPU")
	if env == "" {
		b.Skip(`BENCH_NCPU not set; use scripts/bench.sh -ncpu "8 64"`)
	}
	for _, f := range strings.Fields(env) {
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			b.Fatalf("bad BENCH_NCPU entry %q", f)
		}
		cfg := benchSched
		cfg.CPUs = n
		b.Run(fmt.Sprintf("%dcpu", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig9(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAnnotations regenerates the photo annotation
// ablation at reduced scale.
func BenchmarkAblationAnnotations(b *testing.B) {
	cfg := benchSched
	cfg.Scale = 0.15
	cfg.CPUs = 4
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPhoto(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Per-application benchmarks (the Figure 8/9 cells) ----------------

func benchApp(b *testing.B, app, policy string, cpus int) {
	b.Helper()
	cfg := benchSched
	cfg.CPUs = cpus
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunSched(app, policy, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(run.EMisses), "Emisses")
	}
}

func BenchmarkAppTasksFCFS(b *testing.B) { benchApp(b, "tasks", "FCFS", 1) }
func BenchmarkAppTasksLFF(b *testing.B)  { benchApp(b, "tasks", "LFF", 1) }
func BenchmarkAppMergeFCFS(b *testing.B) { benchApp(b, "merge", "FCFS", 1) }
func BenchmarkAppMergeLFF(b *testing.B)  { benchApp(b, "merge", "LFF", 1) }
func BenchmarkAppPhotoFCFS(b *testing.B) { benchApp(b, "photo", "FCFS", 8) }
func BenchmarkAppPhotoLFF(b *testing.B)  { benchApp(b, "photo", "LFF", 8) }
func BenchmarkAppTSPFCFS(b *testing.B)   { benchApp(b, "tsp", "FCFS", 8) }
func BenchmarkAppTSPLFF(b *testing.B)    { benchApp(b, "tsp", "LFF", 8) }

// --- Checkpoint overhead ----------------------------------------------

// benchCheckpoint measures one tasks/LFF cell with and without
// crash-safe checkpointing; the Off/On pair feeds the 2% overhead gate
// in benchdiff.sh (capture is read-only, so the cost is encoding plus
// the atomic write).
func benchCheckpoint(b *testing.B, every uint64) {
	b.Helper()
	cfg := benchSched
	cfg.CPUs = 4
	if every > 0 {
		cfg.CheckpointEvery = every
		cfg.CheckpointPath = filepath.Join(b.TempDir(), "bench.snap")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSched("tasks", "LFF", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointOff(b *testing.B) { benchCheckpoint(b, 0) }
func BenchmarkCheckpointOn(b *testing.B)  { benchCheckpoint(b, 200000) }

// --- Substrate microbenchmarks ----------------------------------------

// BenchmarkContextSwitch measures the full engine context-switch path
// (block, model updates, pick, dispatch) via a yield ping-pong.
func BenchmarkContextSwitch(b *testing.B) {
	sys, err := New(Config{Policy: LFF, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	n := b.N
	sys.Spawn("a", func(t *Thread) {
		for i := 0; i < n; i++ {
			t.Yield()
		}
	})
	sys.Spawn("b", func(t *Thread) {
		for i := 0; i < n; i++ {
			t.Yield()
		}
	})
	b.ResetTimer()
	if err := sys.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMarkovEvolve measures the appendix Markov chain evolution
// used to cross-check the closed form.
func BenchmarkMarkovEvolve(b *testing.B) {
	mk := model.NewMarkov(256, 0.5)
	dist := make([]float64, 257)
	dist[128] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mk.Evolve(dist, 100)
	}
}

// BenchmarkTraceGen measures reference-stream generation.
func BenchmarkTraceGen(b *testing.B) {
	pat := trace.Pattern{
		Fresh: mem.Range{Base: 1 << 20, Len: 4 << 20}, MeanRunWords: 8,
		Hot: mem.Range{Base: 1 << 20, Len: 64 << 10}, PHot: 0.3,
		WriteFrac: 0.3, ComputePerRef: 4,
	}
	g := trace.NewGen(pat, 3)
	var batch mem.Batch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch = batch[:0]
		batch, _ = g.Emit(batch, 4096)
	}
	b.ReportMetric(4096, "refs/op")
}

// --- Observability benchmarks -------------------------------------------
//
// BenchmarkObsOff vs BenchmarkObsTrace is the telemetry overhead
// record: Off measures the disabled path (the nil-observer guards on
// every emission site — the number that must stay within 2% of the
// pre-telemetry baseline in BENCH_*.json), Metrics and Trace measure
// what enabling each level costs. bench.sh captures all three, so the
// committed JSON carries the on/off delta run over run.

func benchObs(b *testing.B, level obs.Level) {
	b.Helper()
	cfg := benchSched
	cfg.CPUs = 4
	for i := 0; i < b.N; i++ {
		cfg.Obs = obs.NewSession(level, 0)
		if _, err := experiments.RunSched("tasks", "LFF", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsOff(b *testing.B)     { benchObs(b, obs.Off) }
func BenchmarkObsMetrics(b *testing.B) { benchObs(b, obs.Metrics) }
func BenchmarkObsTrace(b *testing.B)   { benchObs(b, obs.Trace) }

// BenchmarkObsExport measures turning a traced run into all three
// export formats (the offline cost, paid once per run).
func BenchmarkObsExport(b *testing.B) {
	cfg := benchSched
	cfg.CPUs = 4
	session := obs.NewSession(obs.Trace, 0)
	cfg.Obs = session
	if _, err := experiments.RunSched("tasks", "LFF", cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := obs.WriteChromeTrace(io.Discard, session.Cells()); err != nil {
			b.Fatal(err)
		}
		if err := obs.WritePrometheus(io.Discard, session.MergedSnapshot()); err != nil {
			b.Fatal(err)
		}
		if err := obs.WriteCSVTimeline(io.Discard, session.Cells()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchObsServer runs one traced session to completion on an in-process
// atsimd server per iteration, optionally with a live /obs?follow=1
// consumer attached over real HTTP. The ObsServe/ObsFollow pair is the
// live-streaming overhead record: the delta is what a continuously
// draining follower costs the engine, and the committed baseline keeps
// both within the overhead budget run over run.
func benchObsServer(b *testing.B, follow bool) {
	b.Helper()
	srv, err := server.New(server.Config{
		DataDir: b.TempDir(), Workers: 2, DefaultQuantum: 50_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cfg := server.SessionConfig{
		App: "tasks", Policy: "LFF", CPUs: 2, Scale: 0.05,
		Quantum: 50_000, Obs: "trace",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(1000 + i)
		info, err := srv.CreateSession(context.Background(), "", cfg)
		if err != nil {
			b.Fatal(err)
		}
		drained := make(chan error, 1)
		if follow {
			resp, err := http.Get(ts.URL + "/v1/sessions/" + info.ID + "/obs?follow=1")
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				_, err := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				drained <- err
			}()
		}
		if _, err := srv.Step(context.Background(), info.ID, 0); err != nil {
			b.Fatal(err)
		}
		if follow {
			if err := <-drained; err != nil {
				b.Fatal(err)
			}
		}
		if err := srv.Delete(context.Background(), info.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsServe(b *testing.B)  { benchObsServer(b, false) }
func BenchmarkObsFollow(b *testing.B) { benchObsServer(b, true) }

// --- Extension benchmarks ----------------------------------------------

// BenchmarkInferenceStudy regenerates the Section 7 inference
// comparison (annotations vs none vs inferred) at reduced scale.
func BenchmarkInferenceStudy(b *testing.B) {
	cfg := benchSched
	cfg.Scale = 0.25
	for i := 0; i < b.N; i++ {
		if _, err := experiments.InferenceStudy("photo", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageMapping regenerates the careful-vs-naive page placement
// ablation.
func BenchmarkPageMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.PageMapping(benchStudy)
	}
}

// BenchmarkMissBreakdown regenerates the three-C's miss classification
// table.
func BenchmarkMissBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.MissBreakdown(benchStudy)
	}
}

// BenchmarkAssocModel measures the set-associative model extension.
func BenchmarkAssocModel(b *testing.B) {
	am := model.NewAssocModel(2048, 4)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += am.ExpectSelf(uint64(i % 100000))
	}
	_ = sink
}

// BenchmarkInferenceMonitorTouch measures the per-miss cost of the
// software Cache Miss Lookaside buffer.
func BenchmarkInferenceMonitorTouch(b *testing.B) {
	mon := inference.NewMonitor(8192)
	for i := 0; i < b.N; i++ {
		mon.Touch(mem.ThreadID(i%16), mem.Addr(uint64(i%4096)*8192))
	}
}
