package threadlocality_test

// Executable documentation for the public API. These run under
// `go test` and appear in godoc.

import (
	"fmt"

	threadlocality "repro"
)

// Example demonstrates the minimal create/share/join flow and shows
// that the run is deterministic enough to assert its output.
func Example() {
	sys, err := threadlocality.New(threadlocality.Config{
		Policy: threadlocality.LFF,
		Seed:   42,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sys.Spawn("main", func(t *threadlocality.Thread) {
		state := t.Alloc(64 * 1024)
		t.Touch(state)
		child := t.Create("child", func(c *threadlocality.Thread) {
			c.ReadRange(state.Base, state.Len)
		})
		// at_share(child, self, 1.0): the child's state is fully
		// contained in mine.
		t.Share(child, t.ID(), 1.0)
		t.Join(child)
	})
	if err := sys.Run(); err != nil {
		fmt.Println("error:", err)
		return
	}
	st := sys.Stats()
	fmt.Printf("policy=%s cpus=%d\n", st.Policy, st.CPUs)
	fmt.Printf("child reads hit warm state: misses < lines touched twice: %v\n",
		st.EMisses < 2*64*1024/64+200)
	// Output:
	// policy=LFF cpus=1
	// child reads hit warm state: misses < lines touched twice: true
}

// ExampleNewModel shows direct use of the shared-state cache model: the
// three closed forms of Section 2.4.
func ExampleNewModel() {
	m := threadlocality.NewModel(8192) // 512KB E-cache, 64B lines

	// A blocked thread with no cached state is dispatched and takes
	// 4000 misses; an independent sleeper had 4000 lines; a dependent
	// sleeper (q = 0.5) had 1000.
	self := m.ExpectSelf(0, 4000)
	indep := m.ExpectIndep(4000, 4000)
	dep := m.ExpectDep(1000, 0.5, 4000)
	fmt.Printf("blocking thread:  %4.0f lines\n", self)
	fmt.Printf("independent:      %4.0f lines\n", indep)
	fmt.Printf("dependent q=0.5:  %4.0f lines\n", dep)
	// Output:
	// blocking thread:  3165 lines
	// independent:      2455 lines
	// dependent q=0.5:  2196 lines
}

// ExampleSystem_Stats shows the counters a run produces.
func ExampleSystem_Stats() {
	sys, err := threadlocality.New(threadlocality.Config{Seed: 7})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sys.Spawn("worker", func(t *threadlocality.Thread) {
		r := t.Alloc(4096)
		t.WriteRange(r.Base, r.Len)
		t.Compute(1000)
	})
	if err := sys.Run(); err != nil {
		fmt.Println("error:", err)
		return
	}
	st := sys.Stats()
	fmt.Printf("%s, misses for a fresh 4KB write: %v\n", st.Policy, st.EMisses > 0)
	// Output:
	// FCFS, misses for a fresh 4KB write: true
}
