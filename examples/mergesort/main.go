// Mergesort: the paper's Section 2.3 running example, verbatim — a
// parallel mergesort whose child threads' state is fully contained in
// the parent's, annotated with at_share(child, parent, 1.0).
//
// Under LFF/CRT, when both children of a parent exit, the parent's
// inflated footprint makes the scheduler merge immediately while the
// children's sorted halves are still cached; under FCFS the merge
// happens an entire tree-level later, after the cache has been wiped.
//
// Run with:
//
//	go run ./examples/mergesort
package main

import (
	"fmt"

	threadlocality "repro"
)

const (
	elements  = 100_000
	leafSize  = 100
	elemBytes = 8
)

func main() {
	fmt.Printf("Parallel mergesort of %d elements (leaf %d) on a 1-CPU Ultra-1\n\n", elements, leafSize)
	var base uint64
	for _, policy := range []threadlocality.Policy{threadlocality.FCFS, threadlocality.LFF, threadlocality.CRT} {
		st := sortOnce(policy)
		fmt.Printf("  %s\n", st)
		if policy == threadlocality.FCFS {
			base = st.EMisses
		} else {
			fmt.Printf("    -> eliminates %.1f%% of FCFS misses\n",
				100*float64(base-st.EMisses)/float64(base))
		}
	}
}

func sortOnce(policy threadlocality.Policy) threadlocality.Stats {
	sys, err := threadlocality.New(threadlocality.Config{Policy: policy, Seed: 5})
	if err != nil {
		panic(err)
	}
	sys.Spawn("sort-main", func(t *threadlocality.Thread) {
		n := uint64(elements * elemBytes)
		arr := t.Alloc(n)
		tmp := t.Alloc(n)
		t.WriteRange(arr.Base, n) // generate the input
		mergeSort(t, arr, tmp, 0, elements)
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return sys.Stats()
}

func mergeSort(t *threadlocality.Thread, arr, tmp threadlocality.Range, lo, hi int) {
	if hi-lo <= leafSize {
		base := arr.Base + threadlocality.Addr(lo*elemBytes)
		bytes := uint64((hi - lo) * elemBytes)
		t.ReadRange(base, bytes)
		t.WriteRange(base, bytes)
		n := uint64(hi - lo)
		t.Compute(n * n / 4) // insertion sort compares
		return
	}
	mid := lo + (hi-lo)/2
	tidL := t.Create("merge-thread", func(c *threadlocality.Thread) { mergeSort(c, arr, tmp, lo, mid) })
	tidR := t.Create("merge-thread", func(c *threadlocality.Thread) { mergeSort(c, arr, tmp, mid, hi) })

	// The paper's annotations, verbatim (Section 2.3):
	//	at_share(tid_l, at_self(), 1.0);
	//	at_share(tid_r, at_self(), 1.0);
	// The children's state is fully contained in the parent's; the
	// parent prefetches nothing for the children, so the reverse edges
	// are omitted.
	t.Share(tidL, t.ID(), 1.0)
	t.Share(tidR, t.ID(), 1.0)

	t.Join(tidL)
	t.Join(tidR)

	// Merge the sorted halves through the scratch array.
	eb := elemBytes
	t.ReadRange(arr.Base+threadlocality.Addr(lo*eb), uint64((hi-lo)*eb))
	t.WriteRange(tmp.Base+threadlocality.Addr(lo*eb), uint64((hi-lo)*eb))
	t.ReadRange(tmp.Base+threadlocality.Addr(lo*eb), uint64((hi-lo)*eb))
	t.WriteRange(arr.Base+threadlocality.Addr(lo*eb), uint64((hi-lo)*eb))
	t.Compute(uint64(3 * (hi - lo)))
}
