// Quickstart: create blocking threads on a simulated SMP, annotate
// their state sharing, and compare the FCFS baseline against the
// counter-driven LFF locality policy.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	threadlocality "repro"
)

func main() {
	fmt.Println("Thread locality quickstart — 4-CPU Enterprise-5000-class SMP")
	fmt.Println()

	var base uint64
	for _, policy := range []threadlocality.Policy{threadlocality.FCFS, threadlocality.LFF, threadlocality.CRT} {
		stats := run(policy)
		fmt.Printf("  %s\n", stats)
		if policy == threadlocality.FCFS {
			base = stats.EMisses
		} else {
			saved := 100 * float64(base-stats.EMisses) / float64(base)
			fmt.Printf("    -> eliminates %.1f%% of the FCFS E-cache misses\n", saved)
		}
	}
}

// run executes a small fork/join program: workers repeatedly touch
// their own state and block, and each worker's state is partially
// shared with its sibling (expressed with at_share-style annotations).
func run(policy threadlocality.Policy) threadlocality.Stats {
	sys, err := threadlocality.New(threadlocality.Config{
		Machine: threadlocality.Enterprise5000(4),
		Policy:  policy,
		Seed:    1,
	})
	if err != nil {
		panic(err)
	}

	sys.Spawn("main", func(t *threadlocality.Thread) {
		const workers = 64
		const stateBytes = 160 * 64 // 160 cache lines each

		kids := make([]threadlocality.ThreadID, 0, workers)
		var prev threadlocality.ThreadID = -1
		var prevState threadlocality.Range
		for i := 0; i < workers; i++ {
			state := t.Alloc(stateBytes)
			shared := prevState // half of my state is my neighbour's
			kid := t.Create("worker", func(c *threadlocality.Thread) {
				for round := 0; round < 12; round++ {
					c.Touch(state) // my own working set
					if shared.Len > 0 {
						c.ReadRange(shared.Base, shared.Len/2)
					}
					c.Compute(2000)
					c.Sleep(3000) // block, as fine-grained threads do
				}
			})
			// Annotate the sharing: half of my neighbour's state is
			// also mine.
			if prev >= 0 {
				t.Share(kid, prev, 0.5)
				t.Share(prev, kid, 0.5)
			}
			prev, prevState = kid, state
			kids = append(kids, kid)
		}
		for _, k := range kids {
			t.Join(k)
		}
	})

	if err := sys.Run(); err != nil {
		panic(err)
	}
	return sys.Stats()
}
