// Policy compare: the tasks affinity benchmark (Squillante & Lazowska's
// synthetic workload, re-run by the paper) across all three policies
// and both platforms — the cleanest demonstration that counter-driven
// footprints alone (no annotations: the tasks have disjoint state)
// recover cache affinity.
//
// Run with:
//
//	go run ./examples/policy_compare
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	threadlocality "repro"
)

const (
	tasks          = 256
	footprintLines = 100
	periods        = 40
)

func main() {
	fmt.Printf("tasks benchmark: %d threads x %d-line disjoint footprints x %d periods\n\n",
		tasks, footprintLines, periods)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "platform\tpolicy\tE-misses\teliminated\tcycles\trelative perf")
	for _, cpus := range []int{1, 8} {
		var baseMisses, baseCycles uint64
		for _, policy := range []threadlocality.Policy{threadlocality.FCFS, threadlocality.LFF, threadlocality.CRT} {
			st := run(policy, cpus)
			elim, perf := "-", "1.00"
			if policy == threadlocality.FCFS {
				baseMisses, baseCycles = st.EMisses, st.Cycles
			} else {
				elim = fmt.Sprintf("%.1f%%", 100*(float64(baseMisses)-float64(st.EMisses))/float64(baseMisses))
				perf = fmt.Sprintf("%.2f", float64(baseCycles)/float64(st.Cycles))
			}
			platform := "Ultra-1"
			if cpus > 1 {
				platform = fmt.Sprintf("E5000/%d", cpus)
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%d\t%s\n", platform, policy, st.EMisses, elim, st.Cycles, perf)
		}
	}
	w.Flush()
}

func run(policy threadlocality.Policy, cpus int) threadlocality.Stats {
	machine := threadlocality.UltraSPARC1()
	if cpus > 1 {
		machine = threadlocality.Enterprise5000(cpus)
	}
	sys, err := threadlocality.New(threadlocality.Config{Machine: machine, Policy: policy, Seed: 4})
	if err != nil {
		panic(err)
	}
	sys.Spawn("tasks-main", func(t *threadlocality.Thread) {
		kids := make([]threadlocality.ThreadID, 0, tasks)
		for i := 0; i < tasks; i++ {
			state := t.Alloc(footprintLines * 64)
			kids = append(kids, t.Create("task", func(c *threadlocality.Thread) {
				for p := 0; p < periods; p++ {
					start := c.Now()
					c.Touch(state)
					c.Compute(25 * footprintLines)
					active := c.Now() - start
					if active == 0 {
						active = 1
					}
					c.Sleep(active) // block as long as we were active
				}
			}))
		}
		for _, k := range kids {
			t.Join(k)
		}
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return sys.Stats()
}
