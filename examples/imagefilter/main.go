// Imagefilter: the photo workload pattern — one blocking thread per
// image row, each reading its neighbours' rows, with distance-weighted
// state-sharing annotations. On one processor FCFS already visits rows
// in the optimal order and locality scheduling only adds overhead; on
// an SMP the locality policies cluster neighbouring rows per processor
// and eliminate most of the sharing misses — the paper's headline
// "photo flips" result.
//
// Run with:
//
//	go run ./examples/imagefilter
package main

import (
	"fmt"

	threadlocality "repro"
)

const (
	width    = 1024
	height   = 512
	bpp      = 3
	radius   = 2
	passes   = 3
	bandRows = 32
)

func main() {
	fmt.Printf("%dx%d rgb softening filter, one thread per row, %d passes\n\n", width, height, passes)
	for _, cpus := range []int{1, 8} {
		var base uint64
		fmt.Printf("on %d CPU(s):\n", cpus)
		for _, policy := range []threadlocality.Policy{threadlocality.FCFS, threadlocality.LFF} {
			st := filter(policy, cpus)
			fmt.Printf("  %s\n", st)
			if policy == threadlocality.FCFS {
				base = st.EMisses
			} else {
				fmt.Printf("    -> eliminates %.1f%% of FCFS misses\n",
					100*(float64(base)-float64(st.EMisses))/float64(base))
			}
		}
		fmt.Println()
	}
}

func filter(policy threadlocality.Policy, cpus int) threadlocality.Stats {
	machine := threadlocality.UltraSPARC1()
	if cpus > 1 {
		machine = threadlocality.Enterprise5000(cpus)
	}
	sys, err := threadlocality.New(threadlocality.Config{Machine: machine, Policy: policy, Seed: 2})
	if err != nil {
		panic(err)
	}

	sys.Spawn("filter-main", func(t *threadlocality.Thread) {
		rowBytes := uint64(width * bpp)
		in := t.Alloc(rowBytes * height)
		out := t.Alloc(rowBytes * height)
		row := func(r int) threadlocality.Addr { return in.Base + threadlocality.Addr(uint64(r)*rowBytes) }

		pass := threadlocality.NewBarrier("pass", height)
		bands := make([]*threadlocality.Mutex, (height+bandRows-1)/bandRows)
		for b := range bands {
			bands[b] = threadlocality.NewMutex("band")
		}

		kids := make([]threadlocality.ThreadID, height)
		for r := 0; r < height; r++ {
			r := r
			band := bands[r/bandRows]
			kids[r] = t.Create("row", func(c *threadlocality.Thread) {
				for it := 0; it < passes; it++ {
					c.Lock(band)
					for dr := -radius; dr <= radius; dr++ {
						if src := r + dr; src >= 0 && src < height {
							c.ReadRange(row(src), rowBytes)
						}
					}
					work := uint64(width * 4)
					c.Compute(work/2 + c.Rand().Uint64n(work))
					c.WriteRange(out.Base+threadlocality.Addr(uint64(r)*rowBytes), rowBytes)
					c.Unlock(band)
					c.BarrierWait(pass)
				}
			})
			// Distance-weighted sharing annotations: the kernels of
			// nearby rows overlap, so "the closer the corresponding
			// row numbers, the more prefetched state is reused".
			span := 2*radius + 2
			for d := 1; d <= 2*radius && d <= r; d++ {
				q := float64(2*radius+1-d) / float64(span)
				t.Share(kids[r], kids[r-d], q)
				t.Share(kids[r-d], kids[r], q)
			}
		}
		for _, k := range kids {
			t.Join(k)
		}
	})

	if err := sys.Run(); err != nil {
		panic(err)
	}
	return sys.Stats()
}
