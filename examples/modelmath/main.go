// Modelmath: the shared-state cache model as a standalone library —
// the closed forms of Section 2.4, their Markov-chain derivation
// (appendix), and the extensions (set-associative caches, invalidation
// pressure), explored numerically with no simulation at all.
//
// Run with:
//
//	go run ./examples/modelmath
package main

import (
	"fmt"
	"strings"

	threadlocality "repro"
	"repro/internal/model"
)

const n = 8192 // 512KB E-cache, 64-byte lines

func main() {
	m := threadlocality.NewModel(n)

	fmt.Println("The three closed forms (footprints in lines, N = 8192):")
	fmt.Println()
	fmt.Println("  misses   blocking(S0=0)  independent(S0=4096)  dependent(q=.5,S0=1024)")
	for _, misses := range []uint64{0, 1000, 2000, 5000, 10000, 20000, 50000} {
		fmt.Printf("  %6d   %14.0f  %20.0f  %23.0f\n",
			misses,
			m.ExpectSelf(0, misses),
			m.ExpectIndep(4096, misses),
			m.ExpectDep(1024, 0.5, misses))
	}

	fmt.Println()
	fmt.Println("Sparklines (0 → 30k misses):")
	spark("blocking from 0      ", func(x uint64) float64 { return m.ExpectSelf(0, x) })
	spark("independent from 8192", func(x uint64) float64 { return m.ExpectIndep(8192, x) })
	spark("dependent q=0.5 from 0", func(x uint64) float64 { return m.ExpectDep(0, 0.5, x) })
	spark("dependent q=0.5 from 8192", func(x uint64) float64 { return m.ExpectDep(8192, 0.5, x) })

	fmt.Println()
	fmt.Println("Appendix Markov chain vs closed form (N=256, q=0.3, S0=64):")
	mk := model.NewMarkov(256, 0.3)
	small := model.New(256)
	for _, steps := range []int{0, 50, 200, 1000} {
		chain := mk.Expected(64, steps)
		closed := small.ExpectDep(64, 0.3, uint64(steps))
		fmt.Printf("  n=%4d: chain %8.3f   closed form %8.3f   |Δ| %.2e\n",
			steps, chain, closed, abs(chain-closed))
	}

	fmt.Println()
	fmt.Println("Extension 1 — set-associative LRU protects the runner (n=4000):")
	for _, ways := range []int{1, 2, 4, 8} {
		am := model.NewAssocModel(n/ways, ways)
		fmt.Printf("  %d-way: associative model %6.0f lines   direct-mapped form %6.0f\n",
			ways, am.ExpectSelf(4000), am.DirectMappedSelf(4000))
	}

	fmt.Println()
	fmt.Println("Extension 2 — invalidation pressure lowers the dependent plateau (q=0.6):")
	for _, v := range []float64{0, 0.1, 0.25, 0.4} {
		fmt.Printf("  v=%.2f: plateau %6.0f lines (qN/(1+v))\n",
			v, m.ExpectDepInval(0, 0.6, v, 1<<22))
	}
}

// spark prints a tiny text graph of f over [0, 30000] misses.
func spark(label string, f func(uint64) float64) {
	ramp := []rune(" .:-=+*#%@")
	var b strings.Builder
	for i := 0; i <= 60; i++ {
		y := f(uint64(i * 500))
		idx := int(y / float64(n) * float64(len(ramp)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		b.WriteRune(ramp[idx])
	}
	fmt.Printf("  %-26s |%s|\n", label, b.String())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
