// Custom: using the library beyond the paper's configurations — a
// custom machine (16 CPUs, 1MB 2-way E-cache, real dTLB) running a
// custom workload (a software pipeline: stages connected by bounded
// queues, each stage's state shared with its neighbours), comparing the
// three policies.
//
// This is the "downstream user" scenario: nothing here exists in the
// paper; the library's machine model, blocking runtime, annotations and
// policies compose for it anyway.
//
// Run with:
//
//	go run ./examples/custom
package main

import (
	"fmt"

	threadlocality "repro"
)

const (
	stages     = 12
	items      = 300
	stageState = 96 * 1024 // per-stage tables: 96KB each
	queueCap   = 4
)

func main() {
	fmt.Printf("software pipeline: %d stages x %d items, %dKB state per stage\n\n",
		stages, items, stageState/1024)
	var base threadlocality.Stats
	for _, policy := range []threadlocality.Policy{threadlocality.FCFS, threadlocality.LFF, threadlocality.CRT} {
		st := run(policy)
		fmt.Printf("  %s\n", st)
		if policy == threadlocality.FCFS {
			base = st
		} else {
			fmt.Printf("    -> %.1f%% fewer E-misses, %.2fx\n",
				100*(float64(base.EMisses)-float64(st.EMisses))/float64(base.EMisses),
				float64(base.Cycles)/float64(st.Cycles))
		}
	}
}

func run(policy threadlocality.Policy) threadlocality.Stats {
	// A machine the paper never had: 16 CPUs, 1MB 2-way E-cache, and a
	// modelled 64-entry dTLB.
	mc := threadlocality.Enterprise5000(16)
	mc.L2.Size = 1 << 20
	mc.L2.Assoc = 2
	mc.TLBEntries = 64

	sys, err := threadlocality.New(threadlocality.Config{Machine: mc, Policy: policy, Seed: 8})
	if err != nil {
		panic(err)
	}
	sys.Spawn("pipeline", func(t *threadlocality.Thread) {
		// Bounded queues between stages: a slots semaphore (producer
		// waits) and an items semaphore (consumer waits).
		slots := make([]*threadlocality.Semaphore, stages+1)
		avail := make([]*threadlocality.Semaphore, stages+1)
		for i := range slots {
			slots[i] = threadlocality.NewSemaphore("slots", queueCap)
			avail[i] = threadlocality.NewSemaphore("avail", 0)
		}
		// Per-stage state; neighbouring stages share boundary tables.
		state := make([]threadlocality.Range, stages)
		for i := range state {
			state[i] = t.Alloc(stageState)
		}
		kids := make([]threadlocality.ThreadID, stages)
		for s := 0; s < stages; s++ {
			s := s
			kids[s] = t.Create(fmt.Sprintf("stage%d", s), func(c *threadlocality.Thread) {
				for it := 0; it < items; it++ {
					c.SemWait(avail[s]) // wait for an input item
					// Process: own tables plus a slice of the previous
					// stage's output tables.
					c.Touch(state[s])
					if s > 0 {
						c.ReadRange(state[s-1].Base, stageState/4)
					}
					c.Compute(1500)
					c.SemPost(slots[s]) // free the input slot
					c.SemWait(slots[s+1])
					c.SemPost(avail[s+1]) // hand the item on
				}
			})
			// Annotate the boundary sharing with the neighbours.
			if s > 0 {
				t.Share(kids[s-1], kids[s], 0.25)
				t.Share(kids[s], kids[s-1], 0.25)
			}
		}
		// Feed the pipeline and drain its output.
		feeder := t.Create("feeder", func(c *threadlocality.Thread) {
			for it := 0; it < items; it++ {
				c.SemWait(slots[0])
				c.SemPost(avail[0])
			}
		})
		drainer := t.Create("drainer", func(c *threadlocality.Thread) {
			for it := 0; it < items; it++ {
				c.SemWait(avail[stages])
				c.SemPost(slots[stages])
			}
		})
		t.Join(feeder)
		for _, k := range kids {
			t.Join(k)
		}
		t.Join(drainer)
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return sys.Stats()
}
