// Unannotated: locality scheduling for programs with *no* at_share
// annotations — the paper's Section 7 future work ("it is even more
// attractive to identify state sharing patterns entirely at runtime to
// handle, for instance, the existing unmodified POSIX and Java Threads
// application bases"), realized with a software Cache Miss Lookaside
// buffer that infers sharing coefficients from page-level miss
// co-access.
//
// The program is the photo neighbour-sharing pattern with the Share
// calls deleted, as a ported POSIX application would be. Compare:
//
//   - FCFS: the baseline;
//   - LFF with no sharing information: only each thread's own footprint;
//   - LFF with inferred sharing: the monitor discovers the neighbour
//     relations and recovers a large part of the annotated benefit.
//
// Run with:
//
//	go run ./examples/unannotated
package main

import (
	"fmt"

	threadlocality "repro"
)

const (
	width    = 1024
	height   = 512
	bpp      = 3
	radius   = 2
	passes   = 3
	bandRows = 32
)

func main() {
	fmt.Println("Unannotated rows on an 8-CPU SMP: counters only vs inferred sharing")
	fmt.Println()
	base := run("FCFS", false)
	fmt.Printf("  FCFS baseline:        %d E-misses\n", base.EMisses)
	none := run("LFF", false)
	fmt.Printf("  LFF, no sharing info: %d E-misses (%.1f%% eliminated)\n",
		none.EMisses, elim(base, none))
	inferred := run("LFF", true)
	fmt.Printf("  LFF, inferred (CML):  %d E-misses (%.1f%% eliminated)\n",
		inferred.EMisses, elim(base, inferred))
}

func elim(base, v threadlocality.Stats) float64 {
	return 100 * (float64(base.EMisses) - float64(v.EMisses)) / float64(base.EMisses)
}

func run(policy threadlocality.Policy, infer bool) threadlocality.Stats {
	sys, err := threadlocality.New(threadlocality.Config{
		Machine:      threadlocality.Enterprise5000(8),
		Policy:       policy,
		InferSharing: infer,
		Seed:         6,
	})
	if err != nil {
		panic(err)
	}
	sys.Spawn("main", func(t *threadlocality.Thread) {
		rowBytes := uint64(width * bpp)
		in := t.Alloc(rowBytes * height)
		out := t.Alloc(rowBytes * height)
		row := func(r int) threadlocality.Addr { return in.Base + threadlocality.Addr(uint64(r)*rowBytes) }

		pass := threadlocality.NewBarrier("pass", height)
		bands := make([]*threadlocality.Mutex, (height+bandRows-1)/bandRows)
		for b := range bands {
			bands[b] = threadlocality.NewMutex("band")
		}

		kids := make([]threadlocality.ThreadID, height)
		for r := 0; r < height; r++ {
			r := r
			band := bands[r/bandRows]
			kids[r] = t.Create("row", func(c *threadlocality.Thread) {
				for it := 0; it < passes; it++ {
					c.Lock(band)
					for dr := -radius; dr <= radius; dr++ {
						if src := r + dr; src >= 0 && src < height {
							c.ReadRange(row(src), rowBytes)
						}
					}
					work := uint64(width * 4)
					c.Compute(work/2 + c.Rand().Uint64n(work))
					c.WriteRange(out.Base+threadlocality.Addr(uint64(r)*rowBytes), rowBytes)
					c.Unlock(band)
					c.BarrierWait(pass)
				}
			})
			// NOTE: no Share calls anywhere — this is the "unmodified
			// application" scenario.
		}
		for _, k := range kids {
			t.Join(k)
		}
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return sys.Stats()
}
