// Package threadlocality (import "repro") is the public face of the
// reproduction of "Performance Counters and State Sharing Annotations:
// a Unified Approach to Thread Locality" (Boris Weissman, ASPLOS 1998).
//
// It packages the paper's system as a library: a deterministic
// simulated SMP with UltraSPARC-style caches and performance counters,
// an Active-Threads-style blocking thread runtime, the shared-state
// cache model, state-sharing annotations, and the LFF/CRT locality
// scheduling policies with the FCFS baseline.
//
// A minimal program:
//
//	sys, err := threadlocality.New(threadlocality.Config{
//		Machine: threadlocality.Enterprise5000(8),
//		Policy:  threadlocality.LFF,
//	})
//	if err != nil { ... }
//	sys.Spawn("main", func(t *threadlocality.Thread) {
//		state := t.Alloc(64 * 1024)
//		child := t.Create("child", func(c *threadlocality.Thread) {
//			c.ReadRange(state.Base, state.Len)
//		})
//		t.Share(child, t.ID(), 1.0) // at_share: child's state ⊆ mine
//		t.Join(child)
//	})
//	if err := sys.Run(); err != nil { ... }
//	fmt.Println(sys.Stats())
//
// The experiment drivers that regenerate every table and figure of the
// paper live in internal/experiments and are exposed through cmd/repro;
// this package is the substrate they run on.
package threadlocality

import (
	"context"
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/platform/sim"
	"repro/internal/rt"
)

// Policy names a scheduling policy.
type Policy string

// The three policies of the paper's evaluation.
const (
	// FCFS is the first-come first-served baseline.
	FCFS Policy = "FCFS"
	// LFF is Largest Footprint First (Section 4.1).
	LFF Policy = "LFF"
	// CRT is smallest Cache-Reload raTio (Section 4.2).
	CRT Policy = "CRT"
)

// Re-exported core types. Aliases keep the single definition in the
// internal packages while making the full method sets public.
type (
	// Thread is the handle passed to every thread body — the Active
	// Threads API (Access/Compute/Create/Join/Lock/.../Share).
	Thread = rt.T
	// ThreadID identifies a simulated thread.
	ThreadID = mem.ThreadID
	// Addr is a simulated memory address.
	Addr = mem.Addr
	// Range is a byte range of the simulated address space.
	Range = mem.Range
	// Access is one strided memory reference descriptor.
	Access = mem.Access
	// Mutex, Semaphore, Barrier and Cond are the blocking
	// synchronization objects.
	Mutex     = rt.Mutex
	Semaphore = rt.Semaphore
	Barrier   = rt.Barrier
	Cond      = rt.Cond
	// MachineConfig describes a simulated platform (caches, penalties,
	// paging).
	MachineConfig = machine.Config
	// Model is the shared-state cache model (closed forms, priority
	// algebra, Markov chain cross-check).
	Model = model.Model
	// Observer is a run's observability state (event rings + metrics);
	// see internal/obs for the exporters.
	Observer = obs.Observer
	// ObsOptions configures observability (level, ring size).
	ObsOptions = obs.Options
	// ObsLevel selects how much a run records.
	ObsLevel = obs.Level
)

// Observability levels, re-exported.
const (
	// ObsOff records nothing (the default; zero overhead).
	ObsOff = obs.Off
	// ObsMetrics maintains the metrics registry only.
	ObsMetrics = obs.Metrics
	// ObsTrace additionally records per-CPU event rings.
	ObsTrace = obs.Trace
)

// Synchronization constructors, re-exported.
var (
	NewMutex     = rt.NewMutex
	NewSemaphore = rt.NewSemaphore
	NewBarrier   = rt.NewBarrier
	NewCond      = rt.NewCond
)

// UltraSPARC1 returns the paper's uniprocessor platform (Table 1).
func UltraSPARC1() MachineConfig { return machine.UltraSPARC1() }

// Enterprise5000 returns the paper's SMP platform with the given
// processor count.
func Enterprise5000(cpus int) MachineConfig { return machine.Enterprise5000(cpus) }

// NewModel builds a shared-state cache model for a cache of n lines.
func NewModel(lines int) *Model { return model.New(lines) }

// Config configures a System.
type Config struct {
	// Machine selects the platform; the zero value means UltraSPARC1.
	Machine MachineConfig
	// Policy selects the scheduler; the zero value means FCFS.
	Policy Policy
	// ThresholdLines is the heap demotion threshold (default 16).
	ThresholdLines float64
	// DisableAnnotations ignores Share calls (the ablation switch).
	DisableAnnotations bool
	// InferSharing derives sharing coefficients at runtime from miss
	// co-access (a software Cache Miss Lookaside buffer) instead of —
	// or in addition to — explicit Share annotations. This is the
	// paper's Section 7 proposal for unmodified POSIX/Java programs.
	InferSharing bool
	// FairnessLimit bounds starvation: a runnable thread waiting
	// longer than this many dispatches bypasses the locality heaps
	// (the Section 7 escape mechanism). Zero disables it.
	FairnessLimit uint64
	// Seed fixes all randomness; equal seeds give bit-identical runs.
	Seed uint64
	// Observability attaches event tracing and metrics to the run
	// (default off, which costs nothing). With ObsTrace, export the
	// run via Observer() and the internal/obs exporters.
	Observability ObsOptions
}

// System is a simulated machine plus thread runtime, ready to run a
// program.
type System struct {
	mach *machine.Machine
	eng  *rt.Engine
}

// New builds a System. It returns an error for an invalid machine
// configuration or an unknown policy name rather than panicking.
func New(cfg Config) (*System, error) {
	mcfg := cfg.Machine
	if mcfg.CPUs == 0 {
		mcfg = machine.UltraSPARC1()
	}
	if err := mcfg.Validate(); err != nil {
		return nil, err
	}
	policy := cfg.Policy
	if policy == "" {
		policy = FCFS
	}
	m := machine.New(mcfg)
	var observer *obs.Observer
	if cfg.Observability.Level != obs.Off {
		observer = obs.New(mcfg.CPUs, cfg.Observability)
	}
	e, err := rt.New(sim.New(m), rt.Options{
		Policy:             string(policy),
		ThresholdLines:     cfg.ThresholdLines,
		DisableAnnotations: cfg.DisableAnnotations,
		InferSharing:       cfg.InferSharing,
		FairnessLimit:      cfg.FairnessLimit,
		Seed:               cfg.Seed,
		Obs:                observer,
	})
	if err != nil {
		return nil, err
	}
	return &System{mach: m, eng: e}, nil
}

// Spawn creates a root thread running body. Call before Run; threads
// created inside bodies use Thread.Create instead.
func (s *System) Spawn(name string, body func(*Thread)) ThreadID {
	return s.eng.Spawn(body, rt.SpawnOpts{Name: name})
}

// Run executes the program to completion (all threads exited). It
// returns an error on deadlock or if a thread body panicked.
func (s *System) Run() error { return s.eng.Run(context.Background()) }

// RunContext is Run with cancellation: the simulation aborts (and the
// context's error is returned) if ctx is cancelled mid-run.
func (s *System) RunContext(ctx context.Context) error { return s.eng.Run(ctx) }

// Engine exposes the underlying runtime for advanced use (dispatch
// hooks, scheduler inspection).
func (s *System) Engine() *rt.Engine { return s.eng }

// Machine exposes the underlying simulated hardware.
func (s *System) Machine() *machine.Machine { return s.mach }

// Observer returns the run's observability state, or nil when
// Config.Observability was off.
func (s *System) Observer() *Observer { return s.eng.Observer() }

// Stats summarizes a finished run.
type Stats struct {
	Policy     string
	CPUs       int
	ERefs      uint64 // E-cache references
	EMisses    uint64 // E-cache misses
	Cycles     uint64 // parallel completion time in cycles
	Instrs     uint64 // instructions executed
	Dispatches uint64 // context switches
	Steals     uint64 // work-steal migrations
}

// Stats returns the run's counters.
func (s *System) Stats() Stats {
	refs, _, misses := s.mach.Totals()
	snap := s.eng.Snapshot()
	return Stats{
		Policy:     snap.Policy,
		CPUs:       s.mach.NCPU(),
		ERefs:      refs,
		EMisses:    misses,
		Cycles:     s.mach.MaxCycles(),
		Instrs:     s.mach.TotalInstrs(),
		Dispatches: snap.TotalDispatches(),
		Steals:     snap.SchedOps.Steals,
	}
}

// CPUStats is one processor's share of a run.
type CPUStats struct {
	CPU        int
	Cycles     uint64
	Instrs     uint64
	ERefs      uint64
	EMisses    uint64
	Dispatches uint64
}

// PerCPU returns per-processor counters, index = processor number.
func (s *System) PerCPU() []CPUStats {
	disp := s.eng.Snapshot().Dispatches
	out := make([]CPUStats, s.mach.NCPU())
	for i := range out {
		cpu := s.mach.CPU(i)
		out[i] = CPUStats{
			CPU:        i,
			Cycles:     cpu.Cycles,
			Instrs:     cpu.Instrs,
			ERefs:      cpu.ERefs,
			EMisses:    cpu.EMisses,
			Dispatches: disp[i],
		}
	}
	return out
}

func (st Stats) String() string {
	return fmt.Sprintf("%s on %d cpu(s): %d E-refs, %d E-misses (%.1f%% miss), %d cycles, %d instrs, %d dispatches, %d steals",
		st.Policy, st.CPUs, st.ERefs, st.EMisses,
		100*float64(st.EMisses)/max1(float64(st.ERefs)), st.Cycles, st.Instrs, st.Dispatches, st.Steals)
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}
