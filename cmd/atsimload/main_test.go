package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestFollowOnceOn410 pins the client's migration-redirect behavior: a
// 410 Gone with a Location is followed exactly once, and a redirect
// chain (two stale servers pointing at each other) terminates as an
// error instead of looping.
func TestFollowOnceOn410(t *testing.T) {
	var homeHits atomic.Int32
	home := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		homeHits.Add(1)
		fmt.Fprintln(w, `{"state":"done"}`)
	}))
	defer home.Close()
	stale := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", home.URL+r.URL.Path)
		w.WriteHeader(http.StatusGone)
		fmt.Fprintln(w, `{"error":"session migrated"}`)
	}))
	defer stale.Close()

	cl := &client{base: stale.URL, hc: &http.Client{}, opTimeout: 5 * time.Second}
	var out struct {
		State string `json:"state"`
	}
	if err := cl.do("POST", "/v1/sessions/s-000001/step", stepReq{Quanta: 1}, &out); err != nil {
		t.Fatalf("do with 410 redirect: %v", err)
	}
	if out.State != "done" || homeHits.Load() != 1 {
		t.Fatalf("redirect result %+v after %d home hits; want done after exactly 1", out, homeHits.Load())
	}

	// Two stale servers: the second 410 must surface as the error, not
	// recurse.
	var loopHits atomic.Int32
	loop := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		loopHits.Add(1)
		w.Header().Set("Location", stale.URL+r.URL.Path)
		w.WriteHeader(http.StatusGone)
		fmt.Fprintln(w, `{"error":"session migrated"}`)
	}))
	defer loop.Close()
	stale2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", loop.URL+r.URL.Path)
		w.WriteHeader(http.StatusGone)
		fmt.Fprintln(w, `{"error":"session migrated"}`)
	}))
	defer stale2.Close()
	cl2 := &client{base: stale2.URL, hc: &http.Client{}, opTimeout: 5 * time.Second}
	err := cl2.do("POST", "/v1/sessions/s-000001/step", stepReq{Quanta: 1}, nil)
	var he *httpError
	if !asHTTPError(err, &he) || he.status != http.StatusGone {
		t.Fatalf("redirect chain = %v; want a terminal 410", err)
	}
	if got := loopHits.Load(); got != 1 {
		t.Fatalf("followed %d hops past the first redirect; want exactly 1", got)
	}
}

// TestParseObsLines covers the NDJSON slice the migrate checks rely on.
func TestParseObsLines(t *testing.T) {
	data := []byte(`{"seq":1,"kind":"step"}
{"seq":2,"kind":"step"}

{"kind":"gap","dropped":3}
`)
	lines, err := parseObsLines(data)
	if err != nil {
		t.Fatalf("parseObsLines: %v", err)
	}
	if len(lines) != 3 || lines[1].Seq != 2 || lines[2].Kind != "gap" {
		t.Fatalf("parsed %+v; want 3 lines ending in a gap", lines)
	}
	if _, err := parseObsLines([]byte("not json\n")); err == nil {
		t.Fatal("malformed line parsed without error")
	}
}
