// Command atsimload drives an atsimd server for load testing and for
// the crash-safety gates in scripts/soak.sh and scripts/ci.sh. One
// invocation runs one mode:
//
//	create   admit -n sessions and save their ids+configs to -state
//	step     advance every session in -state by -quanta boundaries
//	finish   run every session in -state to completion; write
//	         "index fingerprint" lines to -out; any lost or failed
//	         session fails the run
//	control  create fresh twins of the -state sessions (same config,
//	         same seed), run them to completion uninterrupted, write
//	         the same "index fingerprint" format to -out
//	chaos    verify crash isolation: a panic_at_boundary session must
//	         fail alone while the server stays healthy and a clean
//	         session completes
//	load     create and complete -n sessions as fast as -c workers
//	         allow; report throughput and latency percentiles (per
//	         session, and per step when -quanta > 0 paces the
//	         completion in bounded steps) and enforce -slo-p99 /
//	         -slo-rate; -summary-json writes the machine-readable
//	         result
//	wait     poll /readyz until the server answers (startup scripting)
//	metrics  fetch /metrics and assert every -expect substring appears
//	         (scrape gate for soak.sh, no curl/grep dependency)
//	migrate  hand every session in -state off to the -target instance,
//	         then assert the handoff contract: the source answers 410
//	         Gone with a Location, a redirected step succeeds on the
//	         target, and the target's /obs stream continues gap-free
//	         from the source's cursor
//
// On a 410 Gone with a Location header (a session migrated away) the
// client re-issues the request once at the new home — exactly once, so
// a redirect loop cannot form.
//
// finish vs control is the service-level determinism gate: a session
// that was stepped, evicted, SIGKILLed and resumed must fingerprint
// identically to an uninterrupted twin.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fsatomic"
	"repro/internal/parallel"
	"repro/internal/retry"
	"repro/internal/server"
)

func main() {
	var (
		serverURL  = flag.String("server", "http://127.0.0.1:8080", "atsimd base URL")
		n          = flag.Int("n", 100, "session count (create, load)")
		conc       = flag.Int("c", 16, "client concurrency")
		statePath  = flag.String("state", "atsimload-state.json", "session state file (written by create, read by step/finish/control)")
		outPath    = flag.String("out", "", "fingerprint output file (finish, control)")
		quanta     = flag.Uint64("quanta", 1, "boundaries per step (step mode; when set explicitly, load mode paces each session in -quanta chunks and reports per-step latency)")
		app        = flag.String("app", "tasks", "workload application")
		policy     = flag.String("policy", "LFF", "scheduling policy")
		cpus       = flag.Int("cpus", 2, "simulated CPUs")
		scale      = flag.Float64("scale", 0.05, "workload scale")
		quantum    = flag.Uint64("quantum", 100000, "session quantum in cycles")
		seedBase   = flag.Uint64("seed-base", 1000, "session i uses seed seed-base+i")
		tenant     = flag.String("tenant", "", "X-Tenant header value")
		bestEffort = flag.Bool("best-effort", false, "step mode: ignore per-session errors (background traffic during kills)")
		timeout    = flag.Duration("timeout", 2*time.Minute, "per-operation budget including retries")
		sloP99     = flag.Duration("slo-p99", 0, "load mode: fail if p99 session latency exceeds this (0 = don't enforce)")
		sloRate    = flag.Float64("slo-rate", 1.0, "load mode: fail if the success fraction drops below this")
		summary    = flag.String("summary-json", "", "load mode: write the machine-readable run summary to this path")
		expect     = flag.String("expect", "", "metrics mode: comma-separated substrings that must appear in /metrics")
		target     = flag.String("target", "", "migrate mode: destination atsimd base URL")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "atsimload: exactly one mode required: create | step | finish | control | chaos | load | wait | metrics | migrate")
		os.Exit(2)
	}
	cl := &client{base: *serverURL, hc: &http.Client{}, tenant: *tenant, opTimeout: *timeout}
	cfg := server.SessionConfig{
		App: *app, Policy: *policy, CPUs: *cpus, Scale: *scale, Quantum: *quantum,
	}
	var err error
	switch mode := flag.Arg(0); mode {
	case "create":
		err = runCreate(cl, *n, *conc, cfg, *seedBase, *statePath)
	case "step":
		err = runStep(cl, *statePath, *conc, *quanta, *bestEffort)
	case "finish":
		err = runFinish(cl, *statePath, *conc, *outPath)
	case "control":
		err = runControl(cl, *statePath, *conc, *outPath)
	case "chaos":
		err = runChaos(cl)
	case "wait":
		err = runWait(cl)
	case "metrics":
		err = runMetrics(cl, *expect)
	case "migrate":
		err = runMigrate(cl, *statePath, *conc, *target)
	case "load":
		// Chunked stepping is opt-in: only an explicit -quanta paces the
		// load sessions (the flag's default 1 belongs to step mode).
		loadQuanta := uint64(0)
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "quanta" {
				loadQuanta = *quanta
			}
		})
		err = runLoad(cl, *n, *conc, cfg, *seedBase, loadQuanta, *sloP99, *sloRate, *summary)
	default:
		fmt.Fprintf(os.Stderr, "atsimload: unknown mode %q\n", mode)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "atsimload: %v\n", err)
		os.Exit(1)
	}
}

// client is a thin atsimd client that honors the server's backpressure
// protocol: 429/503 responses are retried after their Retry-After,
// transport errors with the deterministic backoff of internal/retry,
// all within one bounded per-operation budget. Every retry is counted
// by cause, so load summaries report how much backpressure the run hit.
type client struct {
	base      string
	hc        *http.Client
	tenant    string
	opTimeout time.Duration

	retries429   atomicCounter
	retries503   atomicCounter
	retriesOther atomicCounter
}

// httpError is a non-2xx response.
type httpError struct {
	status     int
	body       string
	retryAfter time.Duration
	location   string // 410 Gone: the session's new home
}

func (e *httpError) Error() string { return fmt.Sprintf("HTTP %d: %s", e.status, e.body) }

func (c *client) do(method, path string, in, out any) error {
	return c.doURL(method, c.base+path, in, out, true)
}

func (c *client) doURL(method, url string, in, out any, follow bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.opTimeout)
	defer cancel()
	var reqBody []byte
	if in != nil {
		var err error
		if reqBody, err = json.Marshal(in); err != nil {
			return err
		}
	}
	pol := retry.Policy{Attempts: 8, Base: 50 * time.Millisecond, Cap: 2 * time.Second}
	delays := pol.Schedule()
	attempt := 0
	for {
		err := c.once(ctx, method, url, reqBody, out)
		if err == nil {
			return nil
		}
		var he *httpError
		retryAfter := time.Duration(-1)
		if ok := asHTTPError(err, &he); ok {
			if follow && he.status == http.StatusGone && he.location != "" {
				// The session migrated away; chase it to its new home —
				// once, so two stale servers can't bounce us forever.
				url = he.location
				follow = false
				continue
			}
			if he.status != http.StatusTooManyRequests && he.status != http.StatusServiceUnavailable {
				return err // terminal: 4xx/5xx that backoff won't fix
			}
			retryAfter = he.retryAfter
		}
		if attempt >= len(delays) {
			return fmt.Errorf("%s %s: retries exhausted: %w", method, url, err)
		}
		switch {
		case he != nil && he.status == http.StatusTooManyRequests:
			c.retries429.inc()
		case he != nil && he.status == http.StatusServiceUnavailable:
			c.retries503.inc()
		default:
			c.retriesOther.inc()
		}
		d := delays[attempt]
		if retryAfter > 0 {
			d = retryAfter
		}
		attempt++
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("%s %s: %w (last error: %v)", method, url, ctx.Err(), err)
		case <-t.C:
		}
	}
}

func asHTTPError(err error, out **httpError) bool {
	he, ok := err.(*httpError)
	if ok {
		*out = he
	}
	return ok
}

func (c *client) once(ctx context.Context, method, url string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.tenant != "" {
		req.Header.Set("X-Tenant", c.tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		he := &httpError{status: resp.StatusCode, body: firstLine(string(data))}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil {
				he.retryAfter = time.Duration(secs) * time.Second
			}
		}
		he.location = resp.Header.Get("Location")
		return he
	}
	if out != nil && len(data) > 0 {
		return json.Unmarshal(data, out)
	}
	return nil
}

// raw fetches a path's body verbatim (for text endpoints like
// /metrics and JSON served whole like /flight).
func (c *client) raw(path string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &httpError{status: resp.StatusCode, body: firstLine(string(data))}
	}
	return data, nil
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// stateFile records the sessions a create run admitted, so later modes
// (and twin controls) can find them.
type stateFile struct {
	Server   string         `json:"server"`
	Sessions []sessionEntry `json:"sessions"`
}

type sessionEntry struct {
	ID     string               `json:"id"`
	Config server.SessionConfig `json:"config"`
}

func loadState(path string) (*stateFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st stateFile
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &st, nil
}

func saveState(path string, st *stateFile) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

func runCreate(cl *client, n, conc int, cfg server.SessionConfig, seedBase uint64, statePath string) error {
	entries, err := parallel.Map(conc, n, func(i int) (sessionEntry, error) {
		c := cfg
		c.Seed = seedBase + uint64(i)
		var info server.Info
		if err := cl.do("POST", "/v1/sessions", c, &info); err != nil {
			return sessionEntry{}, fmt.Errorf("creating session %d: %w", i, err)
		}
		return sessionEntry{ID: info.ID, Config: info.Config}, nil
	})
	if err != nil {
		return err
	}
	if err := saveState(statePath, &stateFile{Server: cl.base, Sessions: entries}); err != nil {
		return err
	}
	fmt.Printf("atsimload: created %d sessions -> %s\n", n, statePath)
	return nil
}

type stepReq struct {
	Quanta uint64 `json:"quanta"`
}

func runStep(cl *client, statePath string, conc int, quanta uint64, bestEffort bool) error {
	st, err := loadState(statePath)
	if err != nil {
		return err
	}
	var okCount, failCount atomicCounter
	err = parallel.ForEach(conc, len(st.Sessions), func(i int) error {
		var res server.StepResult
		err := cl.do("POST", "/v1/sessions/"+st.Sessions[i].ID+"/step", stepReq{Quanta: quanta}, &res)
		if err != nil {
			failCount.inc()
			if bestEffort {
				return nil
			}
			return fmt.Errorf("stepping %s: %w", st.Sessions[i].ID, err)
		}
		okCount.inc()
		return nil
	})
	fmt.Printf("atsimload: stepped %d sessions (%d errors)\n", okCount.get(), failCount.get())
	return err
}

func runFinish(cl *client, statePath string, conc int, outPath string) error {
	st, err := loadState(statePath)
	if err != nil {
		return err
	}
	fps, err := completeAll(cl, conc, len(st.Sessions), func(i int) (string, error) {
		return finishSession(cl, st.Sessions[i].ID)
	})
	if err != nil {
		return err
	}
	return writeFingerprints(outPath, fps)
}

func runControl(cl *client, statePath string, conc int, outPath string) error {
	st, err := loadState(statePath)
	if err != nil {
		return err
	}
	fps, err := completeAll(cl, conc, len(st.Sessions), func(i int) (string, error) {
		var info server.Info
		if err := cl.do("POST", "/v1/sessions", st.Sessions[i].Config, &info); err != nil {
			return "", fmt.Errorf("creating control twin %d: %w", i, err)
		}
		fp, err := finishSession(cl, info.ID)
		if err != nil {
			return "", err
		}
		// Delete the twin so control runs don't accumulate sessions.
		cl.do("DELETE", "/v1/sessions/"+info.ID, nil, nil)
		return fp, nil
	})
	if err != nil {
		return err
	}
	return writeFingerprints(outPath, fps)
}

// finishSession runs one session to completion and returns its
// fingerprint.
func finishSession(cl *client, id string) (string, error) {
	var res server.StepResult
	if err := cl.do("POST", "/v1/sessions/"+id+"/step", stepReq{Quanta: 0}, &res); err != nil {
		return "", fmt.Errorf("finishing %s: %w", id, err)
	}
	if res.State != server.StateDone || res.Result == nil {
		return "", fmt.Errorf("session %s finished in state %q (failure: %s)", id, res.State, res.Failure)
	}
	return res.Result.Fingerprint, nil
}

func completeAll(cl *client, conc, n int, one func(i int) (string, error)) ([]string, error) {
	return parallel.Map(conc, n, func(i int) (string, error) { return one(i) })
}

// writeFingerprints emits "index fingerprint" lines; two such files
// from finish and control compare with cmp(1).
func writeFingerprints(path string, fps []string) error {
	var buf bytes.Buffer
	for i, fp := range fps {
		fmt.Fprintf(&buf, "%d %s\n", i, fp)
	}
	if path == "" || path == "-" {
		_, err := os.Stdout.Write(buf.Bytes())
		return err
	}
	if err := fsatomic.WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(buf.Bytes())
		return err
	}); err != nil {
		return err
	}
	fmt.Printf("atsimload: wrote %d fingerprints -> %s\n", len(fps), path)
	return nil
}

// runWait polls the server's readiness endpoint until it answers 200
// or the -timeout budget runs out — the scripting primitive for
// "server is up" without a curl dependency.
func runWait(cl *client) error {
	deadline := time.Now().Add(cl.opTimeout)
	for {
		// One quick un-retried probe per tick; the loop is the retry.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := cl.once(ctx, "GET", cl.base+"/readyz", nil, nil)
		cancel()
		if err == nil {
			fmt.Println("atsimload: server ready")
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not ready after %v: %w", cl.opTimeout, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// runChaos is the crash-isolation gate: one poisoned session must fail
// alone — the server stays ready and a clean session still completes.
func runChaos(cl *client) error {
	// Obs is pinned to trace so the flight-record check below holds even
	// against a server whose -session-obs default is lowered.
	poison := server.SessionConfig{App: "tasks", Policy: "LFF", CPUs: 2, Scale: 0.05,
		Seed: 7, Quantum: 100000, PanicAtBoundary: 1, Obs: "trace"}
	var info server.Info
	if err := cl.do("POST", "/v1/sessions", poison, &info); err != nil {
		return fmt.Errorf("creating poisoned session: %w", err)
	}
	var res server.StepResult
	err := cl.do("POST", "/v1/sessions/"+info.ID+"/step", stepReq{Quanta: 0}, &res)
	var he *httpError
	switch {
	case err == nil && res.State == server.StateFailed:
		// 2xx bodies never carry failed state (the server maps it to
		// 409), but accept either shape.
	case asHTTPError(err, &he) && he.status == http.StatusConflict:
	default:
		return fmt.Errorf("poisoned session: want failed state or HTTP 409, got res=%+v err=%v", res, err)
	}
	var got server.Info
	if err := cl.do("GET", "/v1/sessions/"+info.ID, nil, &got); err != nil {
		return fmt.Errorf("inspecting poisoned session: %w", err)
	}
	if got.State != server.StateFailed || got.Failure == "" {
		return fmt.Errorf("poisoned session state %q, want failed with a diagnostic", got.State)
	}
	// The panic must have left a flight record: valid JSON, classified
	// as a panic, holding the engine's final pre-panic events.
	flight, err := cl.raw("/v1/sessions/" + info.ID + "/flight")
	if err != nil {
		return fmt.Errorf("fetching flight record of poisoned session: %w", err)
	}
	var fd struct {
		Reason       string            `json:"reason"`
		EngineEvents []json.RawMessage `json:"engine_events"`
	}
	if err := json.Unmarshal(flight, &fd); err != nil {
		return fmt.Errorf("flight record does not parse: %w", err)
	}
	if fd.Reason != "panic" {
		return fmt.Errorf("flight record reason %q, want panic", fd.Reason)
	}
	if len(fd.EngineEvents) == 0 {
		return fmt.Errorf("flight record carries no engine events")
	}
	if err := cl.do("GET", "/readyz", nil, nil); err != nil {
		return fmt.Errorf("server not ready after session panic: %w", err)
	}
	clean := poison
	clean.PanicAtBoundary = 0
	if err := cl.do("POST", "/v1/sessions", clean, &info); err != nil {
		return fmt.Errorf("creating clean session after panic: %w", err)
	}
	if _, err := finishSession(cl, info.ID); err != nil {
		return fmt.Errorf("clean session after panic: %w", err)
	}
	fmt.Println("atsimload: chaos gate passed: panic isolated, flight recorded, server healthy")
	return nil
}

// percentiles summarizes a latency population (sorted in place).
type percentiles struct {
	Count int     `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
}

func summarize(lat []time.Duration) percentiles {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		return lat[int(p*float64(len(lat)-1))]
	}
	return percentiles{
		Count: len(lat),
		P50ms: float64(pct(0.50)) / float64(time.Millisecond),
		P95ms: float64(pct(0.95)) / float64(time.Millisecond),
		P99ms: float64(pct(0.99)) / float64(time.Millisecond),
	}
}

// loadSummary is the -summary-json format: everything the human line
// prints, machine-readable, plus the client's retry accounting.
type loadSummary struct {
	Sessions       int         `json:"sessions"`
	OK             int         `json:"ok"`
	Failed         int         `json:"failed"`
	ElapsedSeconds float64     `json:"elapsed_seconds"`
	PerSecond      float64     `json:"throughput_per_sec"`
	StepQuanta     uint64      `json:"step_quanta,omitempty"`
	SessionLatency percentiles `json:"session_latency"`
	StepLatency    percentiles `json:"step_latency"`
	Retries429     int         `json:"retries_429"`
	Retries503     int         `json:"retries_503"`
	RetriesOther   int         `json:"retries_other"`
}

func runLoad(cl *client, n, conc int, cfg server.SessionConfig, seedBase, stepQuanta uint64, sloP99 time.Duration, sloRate float64, summaryPath string) error {
	latencies := make([]time.Duration, n)
	var (
		stepMu   sync.Mutex
		stepLat  []time.Duration
		failures atomicCounter
	)
	// completeOne runs one session to done: a single unlimited step, or
	// -quanta-sized steps with each request's latency recorded.
	completeOne := func(id string) error {
		if stepQuanta == 0 {
			_, err := finishSession(cl, id)
			return err
		}
		for {
			var res server.StepResult
			t0 := time.Now()
			if err := cl.do("POST", "/v1/sessions/"+id+"/step", stepReq{Quanta: stepQuanta}, &res); err != nil {
				return fmt.Errorf("stepping %s: %w", id, err)
			}
			stepMu.Lock()
			stepLat = append(stepLat, time.Since(t0))
			stepMu.Unlock()
			switch res.State {
			case server.StateDone:
				return nil
			case server.StateFailed:
				return fmt.Errorf("session %s failed: %s", id, res.Failure)
			}
		}
	}
	start := time.Now()
	parallel.ForEach(conc, n, func(i int) error {
		t0 := time.Now()
		c := cfg
		c.Seed = seedBase + uint64(i)
		var info server.Info
		if err := cl.do("POST", "/v1/sessions", c, &info); err != nil {
			failures.inc()
			return nil
		}
		if err := completeOne(info.ID); err != nil {
			failures.inc()
			return nil
		}
		cl.do("DELETE", "/v1/sessions/"+info.ID, nil, nil)
		latencies[i] = time.Since(t0)
		return nil
	})
	elapsed := time.Since(start)
	var okLat []time.Duration
	for _, d := range latencies {
		if d > 0 {
			okLat = append(okLat, d)
		}
	}
	sum := loadSummary{
		Sessions:       n,
		OK:             len(okLat),
		Failed:         n - len(okLat),
		ElapsedSeconds: elapsed.Seconds(),
		PerSecond:      float64(len(okLat)) / elapsed.Seconds(),
		StepQuanta:     stepQuanta,
		SessionLatency: summarize(okLat),
		StepLatency:    summarize(stepLat),
		Retries429:     cl.retries429.get(),
		Retries503:     cl.retries503.get(),
		RetriesOther:   cl.retriesOther.get(),
	}
	fmt.Printf("atsimload: load: %d/%d sessions ok in %v (%.1f/s), session latency p50=%.0fms p95=%.0fms p99=%.0fms\n",
		sum.OK, n, elapsed.Round(time.Millisecond), sum.PerSecond,
		sum.SessionLatency.P50ms, sum.SessionLatency.P95ms, sum.SessionLatency.P99ms)
	if stepQuanta > 0 {
		fmt.Printf("atsimload: load: %d steps of %d quanta, step latency p50=%.0fms p95=%.0fms p99=%.0fms\n",
			sum.StepLatency.Count, stepQuanta,
			sum.StepLatency.P50ms, sum.StepLatency.P95ms, sum.StepLatency.P99ms)
	}
	if r := sum.Retries429 + sum.Retries503 + sum.RetriesOther; r > 0 {
		fmt.Printf("atsimload: load: %d retries (429: %d, 503: %d, other: %d)\n",
			r, sum.Retries429, sum.Retries503, sum.RetriesOther)
	}
	if summaryPath != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := fsatomic.WriteFile(summaryPath, func(w io.Writer) error {
			_, err := w.Write(append(data, '\n'))
			return err
		}); err != nil {
			return err
		}
		fmt.Printf("atsimload: load summary -> %s\n", summaryPath)
	}
	rate := float64(sum.OK) / float64(n)
	if rate < sloRate {
		return fmt.Errorf("SLO violation: success rate %.3f < %.3f", rate, sloRate)
	}
	if sloP99 > 0 && sum.SessionLatency.P99ms > float64(sloP99)/float64(time.Millisecond) {
		return fmt.Errorf("SLO violation: p99 %.0fms > %v", sum.SessionLatency.P99ms, sloP99)
	}
	return nil
}

// runMetrics is the scrape gate: fetch /metrics and require every
// -expect substring, so scripts can assert instrumentation without a
// curl|grep dependency.
func runMetrics(cl *client, expect string) error {
	body, err := cl.raw("/metrics")
	if err != nil {
		return fmt.Errorf("fetching /metrics: %w", err)
	}
	var missing []string
	var wanted int
	for _, want := range strings.Split(expect, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		wanted++
		if !bytes.Contains(body, []byte(want)) {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("/metrics lacks %d of %d expected series: %s",
			len(missing), wanted, strings.Join(missing, ", "))
	}
	fmt.Printf("atsimload: metrics: all %d expected series present\n", wanted)
	return nil
}

// runMigrate hands every -state session off to -target and asserts the
// full handoff contract per session:
//
//  1. the migrate call succeeds (410 Gone counts as "an earlier attempt
//     already committed", which the chaos soak legitimately produces);
//  2. the source answers a direct step with 410 Gone plus a Location;
//  3. a step issued at the source succeeds after following that
//     redirect once (exercising the client's follow-once path);
//  4. the target's /obs stream resumes at the source's cursor with no
//     gap line — migration must not lose or duplicate engine events.
func runMigrate(cl *client, statePath string, conc int, target string) error {
	if target == "" {
		return fmt.Errorf("migrate mode needs -target")
	}
	target = strings.TrimRight(target, "/")
	st, err := loadState(statePath)
	if err != nil {
		return err
	}
	tcl := &client{base: target, hc: cl.hc, tenant: cl.tenant, opTimeout: cl.opTimeout}
	var moved atomicCounter
	err = parallel.ForEach(conc, len(st.Sessions), func(i int) error {
		id := st.Sessions[i].ID
		cursor, err := obsCursor(cl, id)
		if err != nil {
			return fmt.Errorf("reading obs cursor of %s: %w", id, err)
		}
		var res server.MigrateResult
		err = cl.doURL("POST", cl.base+"/v1/sessions/"+id+"/migrate",
			map[string]string{"target": target}, &res, false)
		var he *httpError
		if asHTTPError(err, &he) && he.status == http.StatusGone {
			err = nil // already on the target; the contract below still holds
		}
		if err != nil {
			return fmt.Errorf("migrating %s: %w", id, err)
		}
		// 2: the source must fence the session.
		ctx, cancel := context.WithTimeout(context.Background(), cl.opTimeout)
		ferr := cl.once(ctx, "POST", cl.base+"/v1/sessions/"+id+"/step", []byte(`{"quanta":1}`), nil)
		cancel()
		if !asHTTPError(ferr, &he) || he.status != http.StatusGone || he.location == "" {
			return fmt.Errorf("source did not fence migrated session %s with 410+Location: %v", id, ferr)
		}
		// 3: the same request through the redirect-following client.
		var sres server.StepResult
		if err := cl.do("POST", "/v1/sessions/"+id+"/step", stepReq{Quanta: 1}, &sres); err != nil {
			return fmt.Errorf("redirected step of %s: %w", id, err)
		}
		// 4: engine events continue seamlessly on the target.
		if err := checkObsContinuity(tcl, id, cursor); err != nil {
			return err
		}
		moved.inc()
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("atsimload: migrated %d sessions -> %s (fence, redirect and obs continuity verified)\n", moved.get(), target)
	return nil
}

// obsLine is the slice of an /obs NDJSON line the migrate checks need.
type obsLine struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
}

func parseObsLines(data []byte) ([]obsLine, error) {
	var out []obsLine
	for _, raw := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var l obsLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("bad /obs line %q: %w", raw, err)
		}
		out = append(out, l)
	}
	return out, nil
}

// obsCursor returns the newest published engine-event sequence number,
// 0 when nothing has been published yet.
func obsCursor(cl *client, id string) (uint64, error) {
	data, err := cl.raw("/v1/sessions/" + id + "/obs")
	if err != nil {
		return 0, err
	}
	lines, err := parseObsLines(data)
	if err != nil {
		return 0, err
	}
	var cursor uint64
	for _, l := range lines {
		if l.Seq > cursor {
			cursor = l.Seq
		}
	}
	return cursor, nil
}

// checkObsContinuity asserts that the target's /obs stream picks up
// exactly past the cursor: the first line is seq cursor+1 and no gap
// records appear.
func checkObsContinuity(tcl *client, id string, cursor uint64) error {
	data, err := tcl.raw(fmt.Sprintf("/v1/sessions/%s/obs?after=%d", id, cursor))
	if err != nil {
		return fmt.Errorf("reading target obs of %s: %w", id, err)
	}
	lines, err := parseObsLines(data)
	if err != nil {
		return err
	}
	for _, l := range lines {
		if l.Kind == "gap" {
			return fmt.Errorf("session %s: target /obs reports a gap after migration (cursor %d)", id, cursor)
		}
	}
	if len(lines) > 0 && lines[0].Seq != cursor+1 {
		return fmt.Errorf("session %s: target /obs resumes at seq %d, want %d", id, lines[0].Seq, cursor+1)
	}
	return nil
}

type atomicCounter struct {
	mu sync.Mutex
	n  int
}

func (c *atomicCounter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *atomicCounter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
