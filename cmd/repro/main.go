// Command repro regenerates the tables and figures of "Performance
// Counters and State Sharing Annotations: a Unified Approach to Thread
// Locality" (Weissman, ASPLOS 1998) on the simulated substrate.
//
// Usage:
//
//	repro [flags] <experiment>...
//
// Experiments: table1 table2 table3 table4 table5 fig4 fig5 fig6 fig7
// fig8 fig9 ablation sharedllc all
//
// Flags:
//
//	-scale f    workload scale for the scheduling experiments (default 1.0)
//	-seed n     random seed (default 11)
//	-cpus n     SMP size for fig9/ablation (default 8)
//	-topology t cache topology for the scheduling experiments:
//	            private-dm (default), shared-llc, shared-assoc:W, shared-fa
//	-quick      shorthand for -scale 0.1 and shorter footprint studies
//	-j n        worker threads for independent experiment cells
//	            (default 1; 0 = all processors; results are identical
//	            for any value)
//	-obs l          observability level: off, metrics or trace
//	-trace-out f    write a Chrome trace of the scheduling runs (Perfetto)
//	-metrics-out f  write Prometheus metrics of the scheduling runs
//	-debug-addr a   serve pprof/expvar/metrics debug endpoints
//	-checkpoint-every n  write per-cell crash-safe snapshots every n
//	                     virtual cycles (with -checkpoint-dir)
//	-checkpoint-dir d    snapshot directory (one file per cell)
//	-resume              resume each cell from its snapshot if present
//	-stall-timeout d     abort stalled runs with a diagnostic dump
//
// Traces and metrics are byte-identical for any -j value: observer
// cells are keyed by run configuration and exported in sorted order.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	csvDir := flag.String("csv", "", "also write figure series as CSV files into this directory")
	svgDir := flag.String("svg", "", "also render figures as SVG files into this directory")
	scale := flag.Float64("scale", 1.0, "workload scale for scheduling experiments")
	seed := flag.Uint64("seed", 11, "random seed")
	cpus := flag.Int("cpus", 8, "SMP size for fig9/ablation")
	topology := flag.String("topology", "", "cache topology for scheduling experiments: private-dm, shared-llc, shared-assoc:W or shared-fa (default private-dm)")
	quick := flag.Bool("quick", false, "fast reduced-size runs")
	jobs := flag.Int("j", 1, "worker threads for independent experiment cells (0 = all processors)")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "write per-cell crash-safe snapshots every N virtual cycles (requires -checkpoint-dir)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for per-cell snapshots")
	resume := flag.Bool("resume", false, "resume each cell from its snapshot in -checkpoint-dir if present (verified bit-exact)")
	stallTimeout := flag.Duration("stall-timeout", 0, "abort a run with a diagnostic dump if it makes no dispatch for this much wall time (0 disables)")
	obsLevel := flag.String("obs", "off", "observability level: off, metrics or trace")
	traceOut := flag.String("trace-out", "", "write a Chrome trace of the scheduling runs to this file (implies -obs trace)")
	metricsOut := flag.String("metrics-out", "", "write Prometheus metrics of the scheduling runs to this file (implies -obs metrics)")
	debugAddr := flag.String("debug-addr", "", "serve pprof/expvar/metrics debug endpoints on this address")
	flag.Parse()

	level, err := obs.ParseLevel(*obsLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(2)
	}
	if _, err := cachesim.ParseTopology(*topology); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(2)
	}
	if *traceOut != "" && level < obs.Trace {
		level = obs.Trace
	}
	if *metricsOut != "" && level < obs.Metrics {
		level = obs.Metrics
	}
	session := obs.NewSession(level, 0)

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: repro [flags] table1|table2|table3|table4|table5|fig4|fig5|fig6|fig7|fig8|fig9|ablation|inference|mapping|breakdown|assoc|scaling|threshold|spawnstacks|sources|coarse|tlb|compare|validate|sharedllc|all")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *debugAddr != "" {
		bound, err := session.StartDebugServer(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "repro: debug endpoints on http://%s/debug/pprof (metrics at /metrics)\n", bound)
	}

	if (*ckptEvery > 0 || *resume) && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "repro: -checkpoint-every/-resume need -checkpoint-dir")
		os.Exit(2)
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
	}
	sched := experiments.SchedConfig{Scale: *scale, Seed: *seed, CPUs: *cpus, Jobs: *jobs, Obs: session,
		CheckpointEvery: *ckptEvery, CheckpointDir: *ckptDir, Resume: *resume, StallTimeout: *stallTimeout,
		Topology: *topology}
	study := experiments.StudyConfig{Seed: *seed, Jobs: *jobs}
	if *quick {
		if *scale == 1.0 {
			sched.Scale = 0.1
		}
		study.MaxMisses = 6000
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "all" {
		args = []string{"table1", "table2", "table3", "table4", "fig4",
			"fig5", "fig6", "fig7", "fig8", "fig9", "table5", "ablation",
			"inference", "mapping", "breakdown", "assoc", "threshold", "spawnstacks", "sources",
			"sharedllc"}
	}

	for _, name := range args {
		out, err := run(name, sched, study)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(strings.TrimRight(out, "\n"))
		fmt.Println()
		if *csvDir != "" {
			if err := writeCSV(*csvDir, name, study); err != nil {
				fmt.Fprintf(os.Stderr, "repro: csv %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		if *svgDir != "" {
			if err := writeSVG(*svgDir, name, study); err != nil {
				fmt.Fprintf(os.Stderr, "repro: svg %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}

	if *traceOut != "" {
		if err := session.WriteTraceFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "repro: wrote Chrome trace (%d cells) to %s\n", len(session.Cells()), *traceOut)
	}
	if *metricsOut != "" {
		if err := session.WriteMetricsFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "repro: wrote Prometheus metrics to %s\n", *metricsOut)
	}
}

// writeCSV re-derives the figure's series and writes them as CSV. Runs
// are deterministic, so regenerating costs only time.
func writeCSV(dir, name string, study experiments.StudyConfig) error {
	var series []*stats.Series
	switch name {
	case "fig4":
		res := experiments.Fig4(study)
		// One file per curve: samples land at the actual miss counts,
		// which differ between curves.
		for label, set := range map[string][]*experiments.Curve{
			"a": res.A, "b": res.B, "c": res.C, "d": res.D,
		} {
			for _, c := range set {
				pair := []*stats.Series{
					{Label: "observed", X: c.Misses, Y: c.Observed},
					{Label: "predicted", X: c.Misses, Y: c.Predicted},
				}
				fname := "fig4" + label + "_" + strings.ReplaceAll(c.Label, "=", "")
				if err := dumpCSV(dir, fname, pair); err != nil {
					return err
				}
			}
		}
		return nil
	case "fig5", "fig7":
		results := experiments.Fig5(study)
		if name == "fig7" {
			results = experiments.Fig7(study)
		}
		// One file per application: the checkpoints land at different
		// miss counts per app, so they cannot share an x column.
		for _, r := range results {
			c := r.Footprint
			pair := []*stats.Series{
				{Label: "observed", X: c.Misses, Y: c.Observed},
				{Label: "predicted", X: c.Misses, Y: c.Predicted},
			}
			if err := dumpCSV(dir, name+"_"+r.App.Name, pair); err != nil {
				return err
			}
		}
		return nil
	case "fig6":
		for _, r := range experiments.Fig6(study) {
			mpi := r.MPI
			if err := dumpCSV(dir, "fig6_"+r.App.Name, []*stats.Series{&mpi}); err != nil {
				return err
			}
		}
		return nil
	case "assoc":
		res := experiments.AssocStudy(2, study)
		series = append(series,
			&stats.Series{Label: "observed", X: res.Misses, Y: res.Observed},
			&stats.Series{Label: "assoc model", X: res.Misses, Y: res.AssocPred},
			&stats.Series{Label: "direct-mapped model", X: res.Misses, Y: res.DMPred})
	case "sharedllc":
		res := experiments.SharedLLC(study)
		for label, set := range map[string][]*experiments.Curve{
			"a": res.A, "b": res.B, "c": res.C,
		} {
			for _, c := range set {
				pair := []*stats.Series{
					{Label: "observed", X: c.Misses, Y: c.Observed},
					{Label: "predicted", X: c.Misses, Y: c.Predicted},
				}
				fname := "sharedllc" + label + "_" + strings.ReplaceAll(strings.ReplaceAll(c.Label, "=", ""), " ", "_")
				if err := dumpCSV(dir, fname, pair); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		return nil // tabular experiments have no series
	}
	return dumpCSV(dir, name, series)
}

// writeSVG renders the figure's series as SVG charts, dashing the
// model-prediction series.
func writeSVG(dir, name string, study experiments.StudyConfig) error {
	plots := map[string]*report.SVGPlot{}
	switch name {
	case "fig4":
		res := experiments.Fig4(study)
		for label, set := range map[string][]*experiments.Curve{
			"a": res.A, "b": res.B, "c": res.C, "d": res.D,
		} {
			plot := &report.SVGPlot{
				Title:  "Figure 4" + label + " — random memory walk",
				XLabel: "E-cache misses", YLabel: "footprint (lines)",
				Dashed: map[int]bool{},
			}
			for _, c := range set {
				plot.Dashed[len(plot.Series)+1] = true
				plot.Series = append(plot.Series,
					&stats.Series{Label: c.Label + " observed", X: c.Misses, Y: c.Observed},
					&stats.Series{Label: c.Label + " predicted", X: c.Misses, Y: c.Predicted})
			}
			plots["fig4"+label] = plot
		}
	case "fig5", "fig7":
		results := experiments.Fig5(study)
		if name == "fig7" {
			results = experiments.Fig7(study)
		}
		for _, r := range results {
			c := r.Footprint
			plots[name+"_"+r.App.Name] = &report.SVGPlot{
				Title:  r.App.Name + " — thread cache footprint",
				XLabel: "E-cache misses", YLabel: "footprint (lines)",
				Series: []*stats.Series{
					{Label: "observed", X: c.Misses, Y: c.Observed},
					{Label: "predicted", X: c.Misses, Y: c.Predicted},
				},
				Dashed: map[int]bool{1: true},
			}
		}
	case "fig6":
		plot := &report.SVGPlot{
			Title:  "Figure 6 — E-cache misses per 1000 instructions",
			XLabel: "instructions (millions)", YLabel: "MPI",
		}
		for _, r := range experiments.Fig6(study) {
			mpi := r.MPI
			plot.Series = append(plot.Series, &mpi)
		}
		plots["fig6"] = plot
	case "sharedllc":
		res := experiments.SharedLLC(study)
		for label, set := range map[string][]*experiments.Curve{
			"a": res.A, "b": res.B, "c": res.C,
		} {
			plot := &report.SVGPlot{
				Title:  "Shared LLC " + label + " — co-runner-aware model",
				XLabel: "total E-cache misses", YLabel: "footprint (lines)",
				Dashed: map[int]bool{},
			}
			for _, c := range set {
				plot.Dashed[len(plot.Series)+1] = true
				plot.Series = append(plot.Series,
					&stats.Series{Label: c.Label + " observed", X: c.Misses, Y: c.Observed},
					&stats.Series{Label: c.Label + " predicted", X: c.Misses, Y: c.Predicted})
			}
			plots["sharedllc"+label] = plot
		}
	case "assoc":
		res := experiments.AssocStudy(2, study)
		plots["assoc"] = &report.SVGPlot{
			Title:  "2-way LRU E-cache — observed vs models",
			XLabel: "E-cache misses", YLabel: "footprint (lines)",
			Series: []*stats.Series{
				{Label: "observed", X: res.Misses, Y: res.Observed},
				{Label: "assoc model", X: res.Misses, Y: res.AssocPred},
				{Label: "direct-mapped model", X: res.Misses, Y: res.DMPred},
			},
			Dashed: map[int]bool{1: true, 2: true},
		}
	default:
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for fname, plot := range plots {
		f, err := os.Create(filepath.Join(dir, fname+".svg"))
		if err != nil {
			return err
		}
		if _, err := plot.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func dumpCSV(dir, name string, series []*stats.Series) error {
	if len(series) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return report.CSV(f, series...)
}

func run(name string, sched experiments.SchedConfig, study experiments.StudyConfig) (string, error) {
	switch name {
	case "list":
		return "experiments: table1 table2 table3 table4 table5 fig4 fig5 fig6 fig7 fig8 fig9\n" +
			"extensions:  ablation inference mapping breakdown assoc scaling threshold\n" +
			"             spawnstacks sources coarse tlb compare validate sharedllc\n" +
			"meta:        all list", nil
	case "table1":
		return experiments.Table1(), nil
	case "table2":
		return experiments.Table2(), nil
	case "table3":
		return experiments.Table3().Render(), nil
	case "table4":
		return experiments.Table4(), nil
	case "table5":
		res, err := experiments.Table5(sched)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fig4":
		return experiments.Fig4(study).Render(), nil
	case "fig5":
		return experiments.RenderFootprints("Figure 5", experiments.Fig5(study)), nil
	case "fig6":
		return experiments.RenderMPI(experiments.Fig6(study)), nil
	case "fig7":
		return experiments.RenderFootprints("Figure 7", experiments.Fig7(study)), nil
	case "fig8":
		res, err := experiments.Fig8(sched)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fig9":
		res, err := experiments.Fig9(sched)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "ablation":
		res, err := experiments.AblationPhoto(sched)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "inference":
		res, err := experiments.ProfiledStudy("photo", sched)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "mapping":
		return experiments.PageMapping(study).Render(), nil
	case "breakdown":
		return experiments.MissBreakdown(study).Render(), nil
	case "assoc":
		return experiments.AssocStudy(2, study).Render(), nil
	case "scaling":
		res, err := experiments.ScalingStudy(sched, nil)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "threshold":
		res, err := experiments.ThresholdStudy(sched, nil)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "spawnstacks":
		res, err := experiments.SpawnStackStudy(sched)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "compare":
		res, err := experiments.Compare(sched)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "coarse":
		res, err := experiments.CoarseStudy(sched)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "tlb":
		return experiments.TLBStudy(study).Render(), nil
	case "sources":
		res, err := experiments.SourcesStudy(sched)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "validate":
		res, err := experiments.Validate(sched, study)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "sharedllc":
		acc := experiments.SharedLLC(study)
		matrix, err := experiments.SharedLLCSched(sched)
		if err != nil {
			return "", err
		}
		return acc.Render() + "\n" + matrix.Render(), nil
	default:
		return "", fmt.Errorf("unknown experiment %q", name)
	}
}
