// Command atsim runs one of the paper's applications under one
// scheduling policy on a configured simulated machine and prints the
// counters — the building block of the Figure 8/9 experiments, exposed
// for ad-hoc investigation.
//
// Usage:
//
//	atsim -app tasks -policy LFF -cpus 8 -scale 0.5
//	atsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/rt"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "tasks", "application: tasks, merge, photo or tsp")
	policy := flag.String("policy", "LFF", "scheduling policy: FCFS, LFF or CRT")
	cpus := flag.Int("cpus", 1, "processor count (1 = Ultra-1, >1 = E5000)")
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = the paper's Table 4 parameters)")
	seed := flag.Uint64("seed", 11, "random seed")
	noAnnot := flag.Bool("no-annotations", false, "ignore at_share annotations (ablation)")
	timeline := flag.Int("timeline", 0, "print the first N context switches (cpu, thread, name)")
	verbose := flag.Bool("verbose", false, "print per-CPU counters and bus traffic")
	list := flag.Bool("list", false, "list applications and exit")
	flag.Parse()

	if *list {
		for _, a := range workloads.SchedApps() {
			fmt.Printf("%-6s %5d threads  %s\n", a.Name, a.Threads, a.Params)
		}
		return
	}

	if *timeline > 0 {
		if err := runTimeline(*app, *policy, *cpus, *scale, *seed, *timeline); err != nil {
			fmt.Fprintln(os.Stderr, "atsim:", err)
			os.Exit(1)
		}
		return
	}

	if *verbose {
		if err := runVerbose(*app, *policy, *cpus, *scale, *seed, *noAnnot); err != nil {
			fmt.Fprintln(os.Stderr, "atsim:", err)
			os.Exit(1)
		}
		return
	}

	run, err := experiments.RunSched(*app, *policy, experiments.SchedConfig{
		CPUs:               *cpus,
		Scale:              *scale,
		Seed:               *seed,
		DisableAnnotations: *noAnnot,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "atsim:", err)
		os.Exit(1)
	}

	fmt.Printf("%s under %s on %d cpu(s), scale %.2f:\n", run.App, run.Policy, run.CPUs, *scale)
	fmt.Printf("  E-cache refs       %12d\n", run.ERefs)
	fmt.Printf("  E-cache misses     %12d (%.2f%% miss ratio)\n", run.EMisses, 100*run.MissRatio())
	fmt.Printf("  cycles             %12d\n", run.Cycles)
	fmt.Printf("  instructions       %12d\n", run.Instrs)
	fmt.Printf("  context switches   %12d\n", run.Dispatch)
	fmt.Printf("  heap operations    %12d\n", run.HeapOps)
	fmt.Printf("  steals             %12d\n", run.Steals)
}

// printMachineDetail renders per-CPU counters and bus traffic after a
// verbose run.
func printMachineDetail(m *machine.Machine, e *rt.Engine) {
	idle := e.IdleCycles()
	fmt.Println("  per-CPU:")
	for i := 0; i < m.NCPU(); i++ {
		cpu := m.CPU(i)
		util := 100 * (1 - float64(idle[i])/float64(cpu.Cycles))
		fmt.Printf("    cpu%-2d cycles %11d  instr %11d  E-misses %9d  util %5.1f%%\n",
			i, cpu.Cycles, cpu.Instrs, cpu.EMisses, util)
	}
	tr := m.MemoryTraffic()
	fmt.Printf("  bus traffic: %d KB fills, %d KB writebacks\n",
		tr.FillBytes/1024, tr.WritebackBytes/1024)
	times := e.ThreadTimes()
	if len(times) > 5 {
		times = times[:5]
	}
	fmt.Println("  top threads by CPU time:")
	for _, tt := range times {
		fmt.Printf("    %-6v %-12s %11d cy in %d dispatches\n", tt.ID, tt.Name, tt.Cycles, tt.Dispatches)
	}
}

// runVerbose runs the app once with direct machine access and prints
// the detailed breakdown.
func runVerbose(appName, policy string, cpus int, scale float64, seed uint64, noAnnot bool) error {
	app, err := workloads.SchedAppByName(appName)
	if err != nil {
		return err
	}
	cfg := machine.UltraSPARC1()
	if cpus > 1 {
		cfg = machine.Enterprise5000(cpus)
	}
	m := machine.New(cfg)
	e := rt.New(m, rt.Options{Policy: policy, Seed: seed, DisableAnnotations: noAnnot})
	app.Spawn(e, scale)
	if err := e.Run(); err != nil {
		return err
	}
	refs, _, misses := m.Totals()
	fmt.Printf("%s under %s on %d cpu(s), scale %.2f:\n", appName, policy, cpus, scale)
	fmt.Printf("  E-refs %d, E-misses %d, cycles %d\n", refs, misses, m.MaxCycles())
	printMachineDetail(m, e)
	return nil
}

// runTimeline executes the app printing the first n dispatches — a
// quick view of what the policy actually does with the threads.
func runTimeline(appName, policy string, cpus int, scale float64, seed uint64, n int) error {
	app, err := workloads.SchedAppByName(appName)
	if err != nil {
		return err
	}
	cfg := machine.UltraSPARC1()
	if cpus > 1 {
		cfg = machine.Enterprise5000(cpus)
	}
	m := machine.New(cfg)
	e := rt.New(m, rt.Options{Policy: policy, Seed: seed})
	count := 0
	e.OnDispatch = func(cpu int, tid mem.ThreadID, name string) {
		if count < n {
			fmt.Printf("%8d cy  cpu%-2d  %-6v  %s\n", m.CPU(cpu).Cycles, cpu, tid, name)
		}
		count++
	}
	app.Spawn(e, scale)
	if err := e.Run(); err != nil {
		return err
	}
	fmt.Printf("... %d dispatches total\n", count)
	return nil
}
