// Command atsim runs one of the paper's applications under one
// scheduling policy on a configured simulated machine and prints the
// counters — the building block of the Figure 8/9 experiments, exposed
// for ad-hoc investigation.
//
// Usage:
//
//	atsim -app tasks -policy LFF -cpus 8 -scale 0.5
//	atsim -app tasks -policy LFF-SH -cpus 8 -topology shared-llc
//	atsim -app tasks -policy LFF -cpus 4 -record run.json
//	atsim -replay run.json
//	atsim -app tasks -cpus 4 -faults all -health
//	atsim -app tasks -cpus 4 -trace-out trace.json -metrics-out metrics.prom
//	atsim -app tasks -cpus 4 -checkpoint-every 500000 -checkpoint run.snap
//	atsim -app tasks -cpus 4 -checkpoint-every 500000 -checkpoint run.snap -resume
//	atsim -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cachesim"
	"repro/internal/experiments"
	"repro/internal/fsatomic"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/platform/faulty"
	"repro/internal/platform/replay"
	"repro/internal/platform/sim"
	"repro/internal/rt"
	"repro/internal/snapshot"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "tasks", "application: tasks, merge, photo or tsp")
	policy := flag.String("policy", "LFF", "scheduling policy: "+strings.Join(model.Schemes(), ", "))
	cpus := flag.Int("cpus", 1, "processor count (1 = Ultra-1, >1 = E5000)")
	topology := flag.String("topology", "", "cache topology: private-dm, shared-llc, shared-assoc:W or shared-fa (default private-dm)")
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = the paper's Table 4 parameters)")
	seed := flag.Uint64("seed", 11, "random seed")
	noAnnot := flag.Bool("no-annotations", false, "ignore at_share annotations (ablation)")
	timeline := flag.Int("timeline", 0, "print the first N context switches (cpu, thread, name)")
	verbose := flag.Bool("verbose", false, "print per-CPU counters and bus traffic")
	record := flag.String("record", "", "capture the run's scheduling trace to this file (JSON)")
	replayFile := flag.String("replay", "", "replay a recorded trace through the scheduler instead of simulating")
	faults := flag.String("faults", "", "inject counter faults: wrap=BITS,stuck=LEN@EVERY,drop=LEN@EVERY,spike=DELTA@EVERY,skew=CYCLES,seed=N, or 'all'")
	health := flag.Bool("health", false, "print per-CPU counter health after the run")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "write a crash-safe snapshot every N virtual cycles (requires -checkpoint)")
	ckptPath := flag.String("checkpoint", "", "snapshot file for -checkpoint-every / -resume")
	resume := flag.Bool("resume", false, "resume from the -checkpoint snapshot if it exists (verified bit-exact)")
	stallTimeout := flag.Duration("stall-timeout", 0, "abort with a diagnostic dump if no dispatch happens for this much wall time (e.g. 30s; 0 disables)")
	obsLevel := flag.String("obs", "off", "observability level: off, metrics or trace")
	traceOut := flag.String("trace-out", "", "write a Chrome trace of the run to this file (implies -obs trace)")
	metricsOut := flag.String("metrics-out", "", "write Prometheus metrics of the run to this file (implies -obs metrics)")
	debugAddr := flag.String("debug-addr", "", "serve pprof/expvar/metrics debug endpoints on this address")
	list := flag.Bool("list", false, "list applications and exit")
	flag.Parse()

	if *list {
		for _, a := range workloads.SchedApps() {
			fmt.Printf("%-6s %5d threads  %s\n", a.Name, a.Threads, a.Params)
		}
		return
	}

	if *replayFile != "" {
		if err := runReplay(*replayFile); err != nil {
			fmt.Fprintln(os.Stderr, "atsim:", err)
			os.Exit(1)
		}
		return
	}

	// Validate every input before doing any work, so a typo fails fast
	// with usage instead of surfacing deep inside a run.
	if _, err := workloads.SchedAppByName(*app); err != nil {
		usageError(err)
	}
	if _, err := model.SchemeFor(*policy); err != nil {
		usageError(err)
	}
	topo, err := cachesim.ParseTopology(*topology)
	if err != nil {
		usageError(err)
	}
	if err := machineConfig(*cpus, topo).Validate(); err != nil {
		usageError(err)
	}
	if *scale <= 0 {
		usageError(fmt.Errorf("scale %v must be positive", *scale))
	}
	faultCfg, err := faulty.ParseSpec(*faults)
	if err != nil {
		usageError(err)
	}
	level, err := obs.ParseLevel(*obsLevel)
	if err != nil {
		usageError(err)
	}
	if *traceOut != "" && level < obs.Trace {
		level = obs.Trace
	}
	if *metricsOut != "" && level < obs.Metrics {
		level = obs.Metrics
	}
	if *ckptEvery > 0 && *ckptPath == "" {
		usageError(fmt.Errorf("-checkpoint-every %d needs -checkpoint FILE", *ckptEvery))
	}
	if *resume && *ckptPath == "" {
		usageError(fmt.Errorf("-resume needs -checkpoint FILE"))
	}
	if (*ckptPath != "" || *stallTimeout != 0) && (*record != "" || *timeline > 0 || *verbose) {
		usageError(fmt.Errorf("-checkpoint/-stall-timeout only apply to the default and -faults run modes"))
	}
	crash := crashConfig{every: *ckptEvery, path: *ckptPath, resume: *resume, stallTimeout: *stallTimeout, topology: topo}
	session := obs.NewSession(level, 0)
	if *debugAddr != "" {
		bound, err := session.StartDebugServer(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "atsim: debug endpoints on http://%s/debug/pprof (metrics at /metrics)\n", bound)
	}

	switch {
	case faultCfg.Enabled() || *health:
		err = runFaults(*app, *policy, *cpus, topo, *scale, *seed, *noAnnot, faultCfg, session, crash)
	case *record != "":
		err = runRecord(*record, *app, *policy, *cpus, topo, *scale, *seed, *noAnnot, session)
	case *timeline > 0:
		err = runTimeline(*app, *policy, *cpus, topo, *scale, *seed, *timeline, session)
	case *verbose:
		err = runVerbose(*app, *policy, *cpus, topo, *scale, *seed, *noAnnot, session)
	default:
		err = runDefault(*app, *policy, *cpus, topo, *scale, *seed, *noAnnot, session, crash)
	}
	if err == nil {
		err = exportObs(session, *traceOut, *metricsOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "atsim:", err)
		os.Exit(1)
	}
}

// cellKey names the single observer cell of a direct atsim run; faults
// runs get a suffix so a fault-injected trace is never confused with a
// clean one.
func cellKey(app, policy string, cpus int, faulted bool) string {
	key := fmt.Sprintf("%s/%s/%dcpu", app, policy, cpus)
	if faulted {
		key += "/faults"
	}
	return key
}

// exportObs writes the requested trace and metrics files after any run
// mode completes.
func exportObs(session *obs.Session, traceOut, metricsOut string) error {
	if traceOut != "" {
		if err := session.WriteTraceFile(traceOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "atsim: wrote Chrome trace to %s\n", traceOut)
	}
	if metricsOut != "" {
		if err := session.WriteMetricsFile(metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "atsim: wrote Prometheus metrics to %s\n", metricsOut)
	}
	return nil
}

// crashConfig bundles the crash-safety flags shared by the run modes
// that support them.
type crashConfig struct {
	every        uint64
	path         string
	resume       bool
	stallTimeout time.Duration
	topology     cachesim.Topology
}

// checkpoint builds the engine-level checkpoint configuration for the
// direct-engine modes: the config record mirrors the experiment
// driver's (app, scale, ablations) plus the fault spec, so a faulted
// snapshot can never resume a clean run or vice versa.
func (c crashConfig) checkpoint(appName string, scale float64, noAnnot bool, faultCfg faulty.Config) (rt.CheckpointConfig, error) {
	cfg := rt.CheckpointConfig{
		Every: c.every,
		Path:  c.path,
		Config: []snapshot.KV{
			{K: "app", V: appName},
			{K: "scale", V: strconv.FormatFloat(scale, 'g', -1, 64)},
			{K: "noannot", V: strconv.FormatBool(noAnnot)},
			{K: "faults", V: faultCfg.String()},
			{K: "topology", V: c.topology.String()},
		},
	}
	if c.resume {
		st, err := snapshot.LoadFile(c.path)
		switch {
		case err == nil:
			cfg.Resume = st
		case errors.Is(err, os.ErrNotExist):
			// No snapshot yet: start fresh, as a restarted soak loop does.
		default:
			return rt.CheckpointConfig{}, err
		}
	}
	return cfg, nil
}

// runDefault is the plain counters-only run behind the flagless
// invocation.
func runDefault(appName, policy string, cpus int, topo cachesim.Topology, scale float64, seed uint64, noAnnot bool, session *obs.Session, crash crashConfig) error {
	run, err := experiments.RunSched(appName, policy, experiments.SchedConfig{
		CPUs:               cpus,
		Topology:           topo.String(),
		Scale:              scale,
		Seed:               seed,
		DisableAnnotations: noAnnot,
		Obs:                session,
		CheckpointEvery:    crash.every,
		CheckpointPath:     crash.path,
		Resume:             crash.resume,
		StallTimeout:       crash.stallTimeout,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s under %s on %d cpu(s), scale %.2f:\n", run.App, run.Policy, run.CPUs, scale)
	fmt.Printf("  E-cache refs       %12d\n", run.ERefs)
	fmt.Printf("  E-cache misses     %12d (%.2f%% miss ratio)\n", run.EMisses, 100*run.MissRatio())
	fmt.Printf("  cycles             %12d\n", run.Cycles)
	fmt.Printf("  instructions       %12d\n", run.Instrs)
	fmt.Printf("  context switches   %12d\n", run.Dispatch)
	fmt.Printf("  heap operations    %12d\n", run.HeapOps)
	fmt.Printf("  steals             %12d\n", run.Steals)
	return nil
}

// usageError reports a bad flag value and exits with the conventional
// usage status.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "atsim:", err)
	flag.Usage()
	os.Exit(2)
}

// machineConfig maps the -cpus and -topology flags to the paper's
// platforms.
func machineConfig(cpus int, topo cachesim.Topology) machine.Config {
	cfg := machine.UltraSPARC1()
	if cpus != 1 {
		cfg = machine.Enterprise5000(cpus)
	}
	cfg.Topology = topo
	return cfg
}

// buildEngine constructs the machine + engine pair for the direct-run
// modes (verbose, timeline, record), attaching the run's observer.
func buildEngine(policy string, cpus int, topo cachesim.Topology, seed uint64, noAnnot bool, o *obs.Observer) (*machine.Machine, *rt.Engine, error) {
	m := machine.New(machineConfig(cpus, topo))
	e, err := rt.New(sim.New(m), rt.Options{Policy: policy, Seed: seed, DisableAnnotations: noAnnot, Obs: o})
	if err != nil {
		return nil, nil, err
	}
	return m, e, nil
}

// printMachineDetail renders per-CPU counters and bus traffic after a
// verbose run.
func printMachineDetail(m *machine.Machine, e *rt.Engine) {
	idle := e.IdleCycles()
	fmt.Println("  per-CPU:")
	for i := 0; i < m.NCPU(); i++ {
		cpu := m.CPU(i)
		util := 100 * (1 - float64(idle[i])/float64(cpu.Cycles))
		fmt.Printf("    cpu%-2d cycles %11d  instr %11d  E-misses %9d  util %5.1f%%\n",
			i, cpu.Cycles, cpu.Instrs, cpu.EMisses, util)
	}
	tr := m.MemoryTraffic()
	fmt.Printf("  bus traffic: %d KB fills, %d KB writebacks\n",
		tr.FillBytes/1024, tr.WritebackBytes/1024)
	times := e.ThreadTimes()
	if len(times) > 5 {
		times = times[:5]
	}
	fmt.Println("  top threads by CPU time:")
	for _, tt := range times {
		fmt.Printf("    %-6v %-12s %11d cy in %d dispatches\n", tt.ID, tt.Name, tt.Cycles, tt.Dispatches)
	}
}

// runVerbose runs the app once with direct machine access and prints
// the detailed breakdown.
func runVerbose(appName, policy string, cpus int, topo cachesim.Topology, scale float64, seed uint64, noAnnot bool, session *obs.Session) error {
	app, err := workloads.SchedAppByName(appName)
	if err != nil {
		return err
	}
	m, e, err := buildEngine(policy, cpus, topo, seed, noAnnot, session.Observer(cellKey(appName, policy, cpus, false), cpus))
	if err != nil {
		return err
	}
	app.Spawn(e, scale)
	if err := e.Run(context.Background()); err != nil {
		return err
	}
	refs, _, misses := m.Totals()
	fmt.Printf("%s under %s on %d cpu(s), scale %.2f:\n", appName, policy, cpus, scale)
	fmt.Printf("  E-refs %d, E-misses %d, cycles %d\n", refs, misses, m.MaxCycles())
	printMachineDetail(m, e)
	return nil
}

// runFaults runs the app with the fault-injecting platform wrapped
// around the simulator and reports the per-CPU counter-health
// accounting — the runtime's sanitizer and quarantine machinery at
// work against lying instrumentation.
func runFaults(appName, policy string, cpus int, topo cachesim.Topology, scale float64, seed uint64, noAnnot bool, cfg faulty.Config, session *obs.Session, crash crashConfig) error {
	app, err := workloads.SchedAppByName(appName)
	if err != nil {
		return err
	}
	ckpt, err := crash.checkpoint(appName, scale, noAnnot, cfg)
	if err != nil {
		return err
	}
	m := machine.New(machineConfig(cpus, topo))
	plat, err := faulty.New(sim.New(m), cfg)
	if err != nil {
		return err
	}
	e, err := rt.New(plat, rt.Options{Policy: policy, Seed: seed, DisableAnnotations: noAnnot,
		Obs:        session.Observer(cellKey(appName, policy, cpus, cfg.Enabled()), cpus),
		Checkpoint: ckpt, StallTimeout: crash.stallTimeout})
	if err != nil {
		return err
	}
	app.Spawn(e, scale)
	if err := e.Run(context.Background()); err != nil {
		return err
	}
	refs, _, misses := m.Totals()
	fmt.Printf("%s under %s on %d cpu(s), scale %.2f, faults %s:\n", appName, policy, cpus, scale, cfg)
	fmt.Printf("  E-refs %d, E-misses %d, cycles %d\n", refs, misses, m.MaxCycles())
	fmt.Println("  counter health:")
	for _, h := range e.CounterHealth() {
		fmt.Printf("    %s\n", h)
	}
	return nil
}

// runTimeline executes the app printing the first n dispatches — a
// quick view of what the policy actually does with the threads.
func runTimeline(appName, policy string, cpus int, topo cachesim.Topology, scale float64, seed uint64, n int, session *obs.Session) error {
	app, err := workloads.SchedAppByName(appName)
	if err != nil {
		return err
	}
	m, e, err := buildEngine(policy, cpus, topo, seed, false, session.Observer(cellKey(appName, policy, cpus, false), cpus))
	if err != nil {
		return err
	}
	count := 0
	e.OnDispatch = func(cpu int, tid mem.ThreadID, name string) {
		if count < n {
			fmt.Printf("%8d cy  cpu%-2d  %-6v  %s\n", m.CPU(cpu).Cycles, cpu, tid, name)
		}
		count++
	}
	app.Spawn(e, scale)
	if err := e.Run(context.Background()); err != nil {
		return err
	}
	fmt.Printf("... %d dispatches total\n", count)
	return nil
}

// runRecord executes the app on the simulator while capturing the
// scheduling trace, then saves the recording for later -replay.
func runRecord(path, appName, policy string, cpus int, topo cachesim.Topology, scale float64, seed uint64, noAnnot bool, session *obs.Session) error {
	app, err := workloads.SchedAppByName(appName)
	if err != nil {
		return err
	}
	m, e, err := buildEngine(policy, cpus, topo, seed, noAnnot, session.Observer(cellKey(appName, policy, cpus, false), cpus))
	if err != nil {
		return err
	}
	plat := e.Platform()
	rec := trace.NewRecorder(policy, plat.NCPU(), plat.CacheLines(),
		plat.LineBytes(), plat.PageBytes(), 16)
	if topo.Shared() {
		// Stamp shared-topology provenance; the zero value stays absent
		// so pre-existing recordings of the private hierarchy are
		// byte-identical.
		rec.SetTopology(topo.String())
	}
	e.OnEvent = rec.Observe
	app.Spawn(e, scale)
	if err := e.Run(context.Background()); err != nil {
		return err
	}
	// Atomic write: a kill mid-save leaves no torn recording behind.
	if err := fsatomic.WriteFile(path, func(w io.Writer) error {
		return rec.Recording().Save(w)
	}); err != nil {
		return err
	}
	refs, _, misses := m.Totals()
	fmt.Printf("recorded %d events (%d intervals) from %s/%s on %d cpu(s) to %s\n",
		len(rec.Recording().Events), len(rec.Recording().Intervals()), appName, policy, cpus, path)
	fmt.Printf("  E-refs %d, E-misses %d, cycles %d\n", refs, misses, m.MaxCycles())
	return nil
}

// runReplay loads a recording and replays it through the real
// scheduler/model stack — no simulator in the loop.
func runReplay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rec, err := trace.Load(f)
	if err != nil {
		return err
	}
	res, err := replay.Evaluate(rec)
	if err != nil {
		return err
	}
	var misses uint64
	for _, iv := range res.Intervals {
		misses += iv.Misses
	}
	fmt.Printf("replayed %d intervals under %s on %d cpu(s): %d interval misses, %d model FLOPs\n",
		len(res.Intervals), res.Policy, rec.NCPU, misses, res.Flops)
	show := res.Intervals
	if len(show) > 10 {
		show = show[:10]
	}
	for _, iv := range show {
		fmt.Printf("  #%-4d cpu%-2d %-6v n=%-8d S=%-10.2f prio=%.4f\n",
			iv.Index, iv.CPU, iv.Thread, iv.Misses, iv.S, iv.Prio)
	}
	if len(res.Intervals) > len(show) {
		fmt.Printf("  ... %d more\n", len(res.Intervals)-len(show))
	}
	return nil
}
