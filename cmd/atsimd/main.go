// Command atsimd serves simulation sessions over HTTP: create a
// session, step it quantum by quantum, stream its events, fetch its
// result. The server survives session panics (crash isolation), sheds
// load with 429 + Retry-After (admission control), evicts cold
// sessions to disk snapshots and resumes them transparently, and
// drains on SIGTERM — checkpointing every live session so a restart
// over the same data directory continues all of them bit-exactly.
//
//	atsimd -addr 127.0.0.1:8080 -data ./atsimd-data
//
// See docs/SERVICE.md for the API and operational semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/fsatomic"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port; the bound address is announced on stdout)")
		dataDir      = flag.String("data", "atsimd-data", "data directory for session manifests and snapshots")
		maxSessions  = flag.Int("max-sessions", 16384, "max resident sessions (any state)")
		maxLive      = flag.Int("max-live", 64, "max sessions with a resident engine")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "max sessions executing simulation concurrently")
		tenantQuota  = flag.Int("tenant-quota", 0, "max resident sessions per tenant (0 = unlimited)")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request deadline")
		stallTimeout = flag.Duration("stall-timeout", 30*time.Second, "per-session engine stall watchdog")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget before engines are aborted")
		chaos        = flag.Bool("chaos", false, "admit sessions with panic_at_boundary fault injection")
		sessionObs   = flag.String("session-obs", "trace", "default engine observability level for sessions that do not pick one (off, metrics, trace)")
		obsRing      = flag.Int("obs-ring", 4096, "default per-session engine event-ring capacity (events)")
		accessLog    = flag.Bool("access-log", true, "write one structured JSON line per request to stderr")
		serverTrace  = flag.String("server-trace", "", "write the wall-clock request trace (Chrome format) to this path on drain")
		peerAllow    = flag.String("peer-allow", "", "comma-separated URL prefixes allowed as migration peers (\"*\" = any; empty disables migration)")
		maxMig       = flag.Int("max-migrations", 4, "max concurrent migrations per direction")
		migTimeout   = flag.Duration("migrate-timeout", 20*time.Second, "per-phase migration deadline (also the per-attempt transfer bound)")
		advertise    = flag.String("advertise", "", "this instance's own base URL, recorded as migrated_from provenance on sessions it hands off")
		chaosMigKill = flag.String("chaos-migrate-kill", "", "chaos gate: SIGKILL this process when migration reaches the named phase point (e.g. source.intent, target.snapshot)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "atsimd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	cfg := server.Config{
		DataDir:        *dataDir,
		MaxSessions:    *maxSessions,
		MaxLive:        *maxLive,
		Workers:        *workers,
		TenantQuota:    *tenantQuota,
		RequestTimeout: *reqTimeout,
		StallTimeout:   *stallTimeout,
		DrainTimeout:   *drainTimeout,
		EnableChaos:    *chaos,
		SessionObs:     *sessionObs,
		ObsRingSize:    *obsRing,
		MaxMigrations:  *maxMig,
		MigrateTimeout: *migTimeout,
		AdvertiseURL:   *advertise,
	}
	if *peerAllow != "" {
		for _, p := range strings.Split(*peerAllow, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.PeerAllow = append(cfg.PeerAllow, p)
			}
		}
	}
	if *accessLog {
		cfg.AccessLog = os.Stderr
	}
	if point := *chaosMigKill; point != "" {
		cfg.CrashPoint = func(p string) error {
			if p != point {
				return nil
			}
			// Simulate a machine death at exactly this protocol point:
			// SIGKILL gives the process no chance to clean up, which is
			// the whole point of the chaos gate.
			fmt.Fprintf(os.Stderr, "atsimd: chaos: SIGKILL at migration point %s\n", p)
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			// SIGKILL delivery is asynchronous; block so no cleanup runs.
			select {}
		}
	}
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atsimd: %v\n", err)
		os.Exit(1)
	}
	restored := len(s.List())
	if restored > 0 {
		fmt.Printf("atsimd: restored %d sessions from %s\n", restored, *dataDir)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	err = s.ListenAndServe(ctx, *addr, func(bound string) {
		// The announce line is a stable scripting interface (soak.sh
		// parses it to find an ephemeral port); keep its shape.
		fmt.Printf("atsimd: listening on %s\n", bound)
	})
	if *serverTrace != "" {
		// Post-drain: the span ring now holds the run's final spans.
		if werr := fsatomic.WriteFile(*serverTrace, s.WriteServerTrace); werr != nil {
			fmt.Fprintf(os.Stderr, "atsimd: writing server trace: %v\n", werr)
		} else {
			fmt.Printf("atsimd: server trace written to %s\n", *serverTrace)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "atsimd: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("atsimd: drained cleanly")
}
