// Command soak is the chaos harness for crash-safe runs: it SIGKILLs a
// checkpointing simulation subprocess at random moments, resumes it
// from its last snapshot, repeats, and asserts that the survivor's
// final state fingerprint is bit-identical to an uninterrupted run's.
//
// The harness re-executes itself as the worker (soak -worker ...), so
// the kill hits a real separate process — the same recovery path a
// power loss or OOM kill exercises — not a goroutine. The worker
// prints one "CKPT <step> <cycle>" line per checkpoint written and a
// final "FINGERPRINT <hex>" line; the parent kills it shortly after a
// seeded-random number of checkpoints (so the kill lands at an
// arbitrary instant past a boundary, not on one), restarts it with
// -resume, and keeps going until a run survives to completion.
//
// Usage:
//
//	soak -app tasks -policy LFF -cpus 4 -scale 0.3 -kills 5
//	soak -app photo -faults all -kills 3 -every 20000
//
// Exit status 0 means every kill/resume cycle converged to the
// uninterrupted run's fingerprint.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/machine"
	"repro/internal/platform"
	"repro/internal/platform/faulty"
	"repro/internal/platform/sim"
	"repro/internal/rt"
	"repro/internal/snapshot"
	"repro/internal/workloads"
	"repro/internal/xrand"
)

func main() {
	app := flag.String("app", "tasks", "application: tasks, merge, photo or tsp")
	policy := flag.String("policy", "LFF", "scheduling policy")
	cpus := flag.Int("cpus", 4, "processor count (1 = Ultra-1, >1 = E5000)")
	scale := flag.Float64("scale", 0.3, "workload scale")
	seed := flag.Uint64("seed", 11, "simulation seed")
	faults := flag.String("faults", "", "fault spec for the faulty platform (see atsim -faults)")
	every := flag.Uint64("every", 10000, "checkpoint interval in virtual cycles")
	kills := flag.Int("kills", 5, "number of SIGKILL/resume cycles to inflict")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for the kill schedule")
	dir := flag.String("dir", "", "working directory for snapshots (default: a temp dir)")
	worker := flag.Bool("worker", false, "internal: run one checkpointing simulation and print CKPT/FINGERPRINT lines")
	resume := flag.Bool("resume", false, "internal: worker resumes from its snapshot if present")
	flag.Parse()

	if *worker {
		if err := runWorker(*dir, *app, *policy, *cpus, *scale, *seed, *faults, *every, *resume); err != nil {
			fmt.Fprintln(os.Stderr, "soak worker:", err)
			os.Exit(1)
		}
		return
	}
	if err := runChaos(*dir, *app, *policy, *cpus, *scale, *seed, *faults, *every, *kills, *chaosSeed); err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
}

// runWorker executes one simulation with checkpointing on, reporting
// each checkpoint on stdout and the final state fingerprint at the
// end.
func runWorker(dir, appName, policy string, cpus int, scale float64, seed uint64, faults string, every uint64, resume bool) error {
	if dir == "" {
		return errors.New("-worker needs -dir")
	}
	appl, err := workloads.SchedAppByName(appName)
	if err != nil {
		return err
	}
	faultCfg, err := faulty.ParseSpec(faults)
	if err != nil {
		return err
	}
	var cfgM machine.Config
	if cpus == 1 {
		cfgM = machine.UltraSPARC1()
	} else {
		cfgM = machine.Enterprise5000(cpus)
	}
	var plat platform.Platform = sim.New(machine.New(cfgM))
	if faultCfg.Enabled() {
		if plat, err = faulty.New(plat, faultCfg); err != nil {
			return err
		}
	}
	ckpt := rt.CheckpointConfig{
		Every: every,
		Path:  filepath.Join(dir, "soak.snap"),
		Config: []snapshot.KV{
			{K: "app", V: appName},
			{K: "scale", V: fmt.Sprintf("%g", scale)},
			{K: "faults", V: faultCfg.String()},
		},
		OnCheckpoint: func(st *snapshot.State) error {
			// One line per boundary; the parent's kill schedule counts
			// these. Stdout is unbuffered line-at-a-time on purpose —
			// the parent must see the marker before the kill window.
			fmt.Printf("CKPT %d %d\n", st.Steps, st.Now)
			return nil
		},
	}
	if resume {
		st, err := snapshot.LoadFile(ckpt.Path)
		switch {
		case err == nil:
			ckpt.Resume = st
			fmt.Printf("RESUME %d %d\n", st.Steps, st.Now)
		case errors.Is(err, os.ErrNotExist):
			// First attempt: nothing written yet, start fresh.
		default:
			return err
		}
	}
	e, err := rt.New(plat, rt.Options{Policy: policy, Seed: seed, Checkpoint: ckpt})
	if err != nil {
		return err
	}
	appl.Spawn(e, scale)
	if err := e.Run(context.Background()); err != nil {
		return err
	}
	fmt.Printf("FINGERPRINT %016x\n", e.CaptureState().Fingerprint())
	return nil
}

// runChaos drives the kill/resume loop and the final differential.
func runChaos(dir, app, policy string, cpus int, scale float64, seed uint64, faults string, every uint64, kills int, chaosSeed uint64) error {
	if dir == "" {
		d, err := os.MkdirTemp("", "soak")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	workerArgs := func(sub string) []string {
		return []string{"-worker", "-dir", sub,
			"-app", app, "-policy", policy,
			"-cpus", fmt.Sprint(cpus), "-scale", fmt.Sprint(scale),
			"-seed", fmt.Sprint(seed), "-faults", faults,
			"-every", fmt.Sprint(every)}
	}

	// Reference: one uninterrupted worker (checkpointing on too, so
	// both final captures carry the same writer metadata).
	refDir := filepath.Join(dir, "straight")
	if err := os.MkdirAll(refDir, 0o755); err != nil {
		return err
	}
	ref, _, err := runOnce(workerArgs(refDir), nil)
	if err != nil {
		return fmt.Errorf("straight run: %w", err)
	}
	if ref == "" {
		return errors.New("straight run printed no fingerprint")
	}
	fmt.Printf("straight run fingerprint %s\n", ref)

	// Chaos loop: kill shortly after a random checkpoint count, then
	// resume; once the kill budget is spent, let the worker finish.
	chaosDir := filepath.Join(dir, "chaos")
	if err := os.MkdirAll(chaosDir, 0o755); err != nil {
		return err
	}
	rng := xrand.New(chaosSeed)
	args := append(workerArgs(chaosDir), "-resume")
	killed := 0
	for attempt := 1; ; attempt++ {
		var killAfter uint64
		if killed < kills {
			killAfter = 1 + rng.Uint64n(4)
		}
		fp, ckpts, err := runOnce(args, killPlan(killAfter))
		switch {
		case err == nil && fp != "":
			if fp != ref {
				return fmt.Errorf("diverged after %d kills: resumed fingerprint %s, straight %s", killed, fp, ref)
			}
			fmt.Printf("survived %d kills over %d attempts; fingerprints identical\n", killed, attempt)
			return nil
		case err != nil && killAfter > 0 && uint64(ckpts) >= killAfter:
			killed++
			fmt.Printf("kill %d: SIGKILL after checkpoint %d\n", killed, ckpts)
		case err != nil:
			return fmt.Errorf("worker died on its own: %w", err)
		default:
			return errors.New("worker exited clean without a fingerprint")
		}
	}
}

// killPlan returns the per-line callback that SIGKILLs the worker once
// it has printed n CKPT lines; nil means never kill.
func killPlan(n uint64) func(line string, proc *os.Process) {
	if n == 0 {
		return nil
	}
	var seen uint64
	return func(line string, proc *os.Process) {
		if strings.HasPrefix(line, "CKPT ") {
			seen++
			if seen >= n {
				proc.Signal(syscall.SIGKILL)
			}
		}
	}
}

// runOnce spawns one worker subprocess, streaming its stdout through
// onLine, and returns the FINGERPRINT value (empty if none) and the
// number of checkpoint lines seen.
func runOnce(args []string, onLine func(string, *os.Process)) (string, int, error) {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", 0, err
	}
	if err := cmd.Start(); err != nil {
		return "", 0, err
	}
	fingerprint, ckpts := "", 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "CKPT ") {
			ckpts++
		}
		if v, ok := strings.CutPrefix(line, "FINGERPRINT "); ok {
			fingerprint = v
		}
		if onLine != nil {
			onLine(line, cmd.Process)
		}
	}
	err = cmd.Wait()
	return fingerprint, ckpts, err
}
