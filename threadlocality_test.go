package threadlocality

import (
	"context"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := New(Config{Policy: LFF, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var childRan bool
	sys.Spawn("main", func(th *Thread) {
		state := th.Alloc(64 * 1024)
		th.ReadRange(state.Base, state.Len)
		child := th.Create("child", func(c *Thread) {
			c.ReadRange(state.Base, state.Len)
			childRan = true
		})
		th.Share(child, th.ID(), 1.0)
		th.Join(child)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child did not run")
	}
	st := sys.Stats()
	if st.EMisses == 0 || st.Cycles == 0 || st.Dispatches == 0 {
		t.Errorf("stats empty: %+v", st)
	}
	if st.Policy != "LFF" || st.CPUs != 1 {
		t.Errorf("metadata: %+v", st)
	}
	if !strings.Contains(st.String(), "LFF on 1 cpu(s)") {
		t.Errorf("String: %s", st)
	}
}

func TestDefaultsAreUltra1FCFS(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Spawn("noop", func(th *Thread) { th.Compute(10) })
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Policy != "FCFS" || st.CPUs != 1 {
		t.Errorf("defaults: %+v", st)
	}
	if sys.Machine().Config().MissCycles != 42 {
		t.Error("default machine is not the Ultra-1")
	}
}

func TestPoliciesDifferOnSMP(t *testing.T) {
	run := func(p Policy) Stats {
		sys, err := New(Config{Machine: Enterprise5000(4), Policy: p, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		sys.Spawn("main", func(th *Thread) {
			var kids []ThreadID
			for i := 0; i < 60; i++ {
				state := th.Alloc(150 * 64)
				kids = append(kids, th.Create("task", func(c *Thread) {
					for p := 0; p < 10; p++ {
						c.Touch(state)
						c.Sleep(2000)
					}
				}))
			}
			for _, k := range kids {
				th.Join(k)
			}
		})
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.Stats()
	}
	fcfs, lff := run(FCFS), run(LFF)
	if lff.EMisses >= fcfs.EMisses {
		t.Errorf("LFF misses %d >= FCFS %d", lff.EMisses, fcfs.EMisses)
	}
}

func TestModelFacade(t *testing.T) {
	m := NewModel(8192)
	if got := m.ExpectSelf(0, 0); got != 0 {
		t.Errorf("ExpectSelf(0,0) = %v", got)
	}
	if m.N() != 8192 {
		t.Errorf("N = %d", m.N())
	}
}

func TestSyncConstructors(t *testing.T) {
	if NewMutex("m") == nil || NewSemaphore("s", 1) == nil ||
		NewBarrier("b", 2) == nil || NewCond("c") == nil {
		t.Fatal("constructors returned nil")
	}
}

func TestPerCPUStats(t *testing.T) {
	sys, err := New(Config{Machine: Enterprise5000(2), Policy: LFF, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Spawn("main", func(th *Thread) {
		a := th.Create("a", func(c *Thread) { c.Compute(100000) })
		b := th.Create("b", func(c *Thread) { c.Compute(100000) })
		th.Join(a)
		th.Join(b)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	per := sys.PerCPU()
	if len(per) != 2 {
		t.Fatalf("PerCPU len = %d", len(per))
	}
	var sumI, sumD uint64
	for i, c := range per {
		if c.CPU != i {
			t.Errorf("index mismatch: %+v", c)
		}
		sumI += c.Instrs
		sumD += c.Dispatches
	}
	st := sys.Stats()
	if sumI != st.Instrs || sumD != st.Dispatches {
		t.Errorf("per-CPU sums (%d,%d) != totals (%d,%d)", sumI, sumD, st.Instrs, st.Dispatches)
	}
	// Both compute threads must have landed on different CPUs.
	if per[0].Instrs < 90000 || per[1].Instrs < 90000 {
		t.Errorf("work not parallelized: %+v", per)
	}
}

func TestConfigKnobsPassThrough(t *testing.T) {
	sys, err := New(Config{
		Policy:         CRT,
		ThresholdLines: 32,
		FairnessLimit:  100,
		InferSharing:   true,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Spawn("noop", func(th *Thread) { th.Compute(1) })
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Engine().Monitor() == nil {
		t.Error("InferSharing not wired")
	}
	if sys.Stats().Policy != "CRT" {
		t.Error("policy not wired")
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"unknown policy", Config{Policy: "NOSUCH"}, "unknown policy"},
		{"too many cpus", Config{Machine: Enterprise5000(257)}, "cpu"},
	}
	for _, c := range cases {
		sys, err := New(c.cfg)
		if err == nil {
			t.Errorf("%s: New accepted %+v", c.name, c.cfg)
			continue
		}
		if sys != nil {
			t.Errorf("%s: non-nil System alongside error", c.name)
		}
		if !strings.Contains(strings.ToLower(err.Error()), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestRunContextCancel(t *testing.T) {
	sys, err := New(Config{Policy: LFF, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys.Spawn("spinner", func(th *Thread) {
		for i := 0; i < 1_000_000; i++ {
			th.Yield()
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must abort, not complete
	if err := sys.RunContext(ctx); err == nil {
		t.Error("cancelled run reported success")
	}
}
