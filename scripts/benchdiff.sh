#!/bin/sh
# Compare two bench.sh JSON files and fail on regressions.
#
# Usage: scripts/benchdiff.sh OLD.json NEW.json [threshold-pct]
#
# Prints a per-benchmark delta table over the benchmarks both files
# contain and exits 1 if any of them regressed by more than the
# threshold (default 2%, the telemetry layer's disabled-path overhead
# budget). Benchmarks present in only one file are listed but never
# fail the gate, so adding or retiring benchmarks does not break it.
set -e

[ $# -ge 2 ] || { echo "usage: $0 OLD.json NEW.json [threshold-pct]" >&2; exit 2; }
old=$1
new=$2
threshold=${3:-2}

awk -v threshold="$threshold" -v oldname="$old" -v newname="$new" '
# Both inputs are the flat {"name": ns, ...} objects bench.sh writes.
/^[[:space:]]*"/ {
	line = $0
	gsub(/[",:]/, " ", line)
	split(line, f, " ")
	if (FILENAME == oldname) oldv[f[1]] = f[2]
	else newv[f[1]] = f[2]
}
END {
	fails = 0
	printf "%-40s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta"
	for (name in newv) {
		if (!(name in oldv)) { printf "%-40s %14s %14d %8s\n", name, "-", newv[name], "new"; continue }
		pct = 100 * (newv[name] - oldv[name]) / oldv[name]
		mark = ""
		if (pct > threshold) { mark = "  REGRESSED"; fails++ }
		printf "%-40s %14d %14d %+7.1f%%%s\n", name, oldv[name], newv[name], pct, mark
	}
	for (name in oldv)
		if (!(name in newv)) printf "%-40s %14d %14s %8s\n", name, oldv[name], "-", "gone"
	if (fails) {
		printf "%d benchmark(s) regressed more than %s%%\n", fails, threshold
		exit 1
	}
}' "$old" "$new"
