#!/bin/sh
# Chaos soak: SIGKILL a checkpointing simulation at random moments,
# resume it from its last snapshot, and assert the survivor's final
# state fingerprint is bit-identical to an uninterrupted run's — the
# end-to-end proof that crash recovery loses nothing.
#
# Usage: scripts/soak.sh [soak flags...]
#
# With no flags, runs a default matrix: a clean multi-CPU run and a
# fault-injected one, a handful of kills each. Any flags are passed
# through to one cmd/soak invocation instead (see cmd/soak -h).
set -e
cd "$(dirname "$0")/.."

bin=$(mktemp)
trap 'rm -f "$bin"' EXIT
go build -o "$bin" ./cmd/soak

if [ $# -gt 0 ]; then
    exec "$bin" "$@"
fi

echo "== soak: tasks/LFF, 4 CPUs, clean counters =="
"$bin" -app tasks -policy LFF -cpus 4 -scale 0.3 -kills 5 -every 10000

echo "== soak: merge/LFF, 4 CPUs, all counter faults =="
"$bin" -app merge -policy LFF -cpus 4 -scale 0.2 -faults all -kills 3 -every 8000

echo "soak: all differentials byte-identical"
