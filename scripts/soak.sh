#!/bin/sh
# Chaos soak: SIGKILL a checkpointing simulation at random moments,
# resume it from its last snapshot, and assert the survivor's final
# state fingerprint is bit-identical to an uninterrupted run's — the
# end-to-end proof that crash recovery loses nothing.
#
# Usage: scripts/soak.sh [soak flags...]
#        scripts/soak.sh server [N]
#
# With no flags, runs a default matrix: a clean multi-CPU run and a
# fault-injected one, a handful of kills each. Any flags are passed
# through to one cmd/soak invocation instead (see cmd/soak -h).
#
# "server" runs the SERVICE-level chaos gate instead: start atsimd,
# admit N sessions (default 200), SIGKILL the server under live step
# traffic, restart it over the same data directory, verify a panic
# session fails in isolation, run every surviving session to
# completion, and require the fingerprints to match uninterrupted
# control twins byte for byte — then a load-mode SLO smoke and a clean
# SIGTERM drain.
set -e
cd "$(dirname "$0")/.."

if [ "${1:-}" = server ]; then
    shift
    n=${1:-200}
    server_pid=""
    work=$(mktemp -d)
    trap 'kill -9 "$server_pid" 2>/dev/null; rm -rf "$work"' EXIT
    go build -o "$work/atsimd" ./cmd/atsimd
    go build -o "$work/atsimload" ./cmd/atsimload
    data="$work/data"

    start_server() {
        "$work/atsimd" -addr 127.0.0.1:0 -data "$data" -chaos \
            -max-live 32 -drain-timeout 30s > "$work/server.log" 2>&1 &
        server_pid=$!
        addr=""
        i=0
        while [ $i -lt 100 ]; do
            addr=$(sed -n 's/^atsimd: listening on //p' "$work/server.log" | head -1)
            [ -n "$addr" ] && break
            kill -0 "$server_pid" 2>/dev/null || {
                echo "soak server: atsimd died on startup:" >&2
                cat "$work/server.log" >&2; exit 1; }
            i=$((i+1)); sleep 0.1
        done
        [ -n "$addr" ] || { echo "soak server: no listen line" >&2; exit 1; }
        url="http://$addr"
        "$work/atsimload" -server "$url" -timeout 30s wait
    }

    echo "== soak server: admit $n sessions =="
    start_server
    "$work/atsimload" -server "$url" -n "$n" -c 32 -state "$work/state.json" create

    echo "== soak server: SIGKILL under live step traffic =="
    "$work/atsimload" -server "$url" -c 32 -quanta 2 -timeout 5s \
        -state "$work/state.json" -best-effort step || true &
    traffic_pid=$!
    sleep 1
    kill -9 "$server_pid"
    wait "$server_pid" 2>/dev/null || true
    wait "$traffic_pid" 2>/dev/null || true

    echo "== soak server: restart over the same data dir =="
    start_server
    restored=$(sed -n 's/^atsimd: restored \([0-9]*\) sessions.*/\1/p' "$work/server.log")
    [ "${restored:-0}" -ge "$n" ] || {
        echo "soak server: restored ${restored:-0} sessions, want >= $n" >&2; exit 1; }

    echo "== soak server: panic isolation probe =="
    "$work/atsimload" -server "$url" chaos

    echo "== soak server: finish survivors vs uninterrupted controls =="
    "$work/atsimload" -server "$url" -c 32 -state "$work/state.json" \
        -out "$work/finish.txt" finish
    "$work/atsimload" -server "$url" -c 32 -state "$work/state.json" \
        -out "$work/control.txt" control
    cmp "$work/finish.txt" "$work/control.txt" || {
        echo "soak server: fingerprints diverged after SIGKILL/restart" >&2; exit 1; }

    echo "== soak server: load SLO smoke =="
    "$work/atsimload" -server "$url" -n 100 -c 32 -seed-base 50000 \
        -slo-rate 1.0 -slo-p99 30s -quanta 3 \
        -summary-json "$work/load-summary.json" load
    grep -q '"step_latency"' "$work/load-summary.json" || {
        echo "soak server: load summary lacks step latency" >&2; exit 1; }

    echo "== soak server: metrics scrape =="
    "$work/atsimload" -server "$url" -expect \
        "atsimd_admission_wait_seconds,atsimd_eviction_seconds,atsimd_snapshot_write_seconds,atsimd_flight_dumps_total" \
        metrics

    echo "== soak server: SIGTERM drains cleanly =="
    kill -TERM "$server_pid"
    wait "$server_pid" || { echo "soak server: drain exited nonzero" >&2; exit 1; }
    grep -q 'drained cleanly' "$work/server.log" || {
        echo "soak server: no clean-drain line" >&2; exit 1; }

    echo "soak server: all gates passed ($n sessions survived SIGKILL byte-identically)"
    exit 0
fi

bin=$(mktemp)
trap 'rm -f "$bin"' EXIT
go build -o "$bin" ./cmd/soak

if [ $# -gt 0 ]; then
    exec "$bin" "$@"
fi

echo "== soak: tasks/LFF, 4 CPUs, clean counters =="
"$bin" -app tasks -policy LFF -cpus 4 -scale 0.3 -kills 5 -every 10000

echo "== soak: merge/LFF, 4 CPUs, all counter faults =="
"$bin" -app merge -policy LFF -cpus 4 -scale 0.2 -faults all -kills 3 -every 8000

echo "soak: all differentials byte-identical"
