#!/bin/sh
# Chaos soak: SIGKILL a checkpointing simulation at random moments,
# resume it from its last snapshot, and assert the survivor's final
# state fingerprint is bit-identical to an uninterrupted run's — the
# end-to-end proof that crash recovery loses nothing.
#
# Usage: scripts/soak.sh [soak flags...]
#        scripts/soak.sh server [N]
#        scripts/soak.sh migrate [N]
#
# With no flags, runs a default matrix: a clean multi-CPU run and a
# fault-injected one, a handful of kills each. Any flags are passed
# through to one cmd/soak invocation instead (see cmd/soak -h).
#
# "server" runs the SERVICE-level chaos gate instead: start atsimd,
# admit N sessions (default 200), SIGKILL the server under live step
# traffic, restart it over the same data directory, verify a panic
# session fails in isolation, run every surviving session to
# completion, and require the fingerprints to match uninterrupted
# control twins byte for byte — then a load-mode SLO smoke and a clean
# SIGTERM drain.
#
# "migrate" runs the cross-instance MIGRATION chaos gate: two atsimd
# instances, a SIGKILL of the source or the target at every protocol
# phase boundary (-chaos-migrate-kill) plus random mid-transfer kills,
# restart over the same directories, automatic intent resolution, then
# N sessions (default 30) migrated under live step traffic. Every
# session must finish exactly once — on whichever side owns it —
# byte-identical to an uninterrupted control twin, with the source
# answering 410 + Location and the target's /obs stream gap-free
# across the handoff (both asserted inside "atsimload migrate").
set -e
cd "$(dirname "$0")/.."

if [ "${1:-}" = server ]; then
    shift
    n=${1:-200}
    server_pid=""
    work=$(mktemp -d)
    trap 'kill -9 "$server_pid" 2>/dev/null; rm -rf "$work"' EXIT
    go build -o "$work/atsimd" ./cmd/atsimd
    go build -o "$work/atsimload" ./cmd/atsimload
    data="$work/data"

    start_server() {
        "$work/atsimd" -addr 127.0.0.1:0 -data "$data" -chaos \
            -max-live 32 -drain-timeout 30s > "$work/server.log" 2>&1 &
        server_pid=$!
        addr=""
        i=0
        while [ $i -lt 100 ]; do
            addr=$(sed -n 's/^atsimd: listening on //p' "$work/server.log" | head -1)
            [ -n "$addr" ] && break
            kill -0 "$server_pid" 2>/dev/null || {
                echo "soak server: atsimd died on startup:" >&2
                cat "$work/server.log" >&2; exit 1; }
            i=$((i+1)); sleep 0.1
        done
        [ -n "$addr" ] || { echo "soak server: no listen line" >&2; exit 1; }
        url="http://$addr"
        "$work/atsimload" -server "$url" -timeout 30s wait
    }

    echo "== soak server: admit $n sessions =="
    start_server
    "$work/atsimload" -server "$url" -n "$n" -c 32 -state "$work/state.json" create

    echo "== soak server: SIGKILL under live step traffic =="
    "$work/atsimload" -server "$url" -c 32 -quanta 2 -timeout 5s \
        -state "$work/state.json" -best-effort step || true &
    traffic_pid=$!
    sleep 1
    kill -9 "$server_pid"
    wait "$server_pid" 2>/dev/null || true
    wait "$traffic_pid" 2>/dev/null || true

    echo "== soak server: restart over the same data dir =="
    start_server
    restored=$(sed -n 's/^atsimd: restored \([0-9]*\) sessions.*/\1/p' "$work/server.log")
    [ "${restored:-0}" -ge "$n" ] || {
        echo "soak server: restored ${restored:-0} sessions, want >= $n" >&2; exit 1; }

    echo "== soak server: panic isolation probe =="
    "$work/atsimload" -server "$url" chaos

    echo "== soak server: finish survivors vs uninterrupted controls =="
    "$work/atsimload" -server "$url" -c 32 -state "$work/state.json" \
        -out "$work/finish.txt" finish
    "$work/atsimload" -server "$url" -c 32 -state "$work/state.json" \
        -out "$work/control.txt" control
    cmp "$work/finish.txt" "$work/control.txt" || {
        echo "soak server: fingerprints diverged after SIGKILL/restart" >&2; exit 1; }

    echo "== soak server: load SLO smoke =="
    "$work/atsimload" -server "$url" -n 100 -c 32 -seed-base 50000 \
        -slo-rate 1.0 -slo-p99 30s -quanta 3 \
        -summary-json "$work/load-summary.json" load
    grep -q '"step_latency"' "$work/load-summary.json" || {
        echo "soak server: load summary lacks step latency" >&2; exit 1; }

    echo "== soak server: metrics scrape =="
    "$work/atsimload" -server "$url" -expect \
        "atsimd_admission_wait_seconds,atsimd_eviction_seconds,atsimd_snapshot_write_seconds,atsimd_flight_dumps_total" \
        metrics

    echo "== soak server: SIGTERM drains cleanly =="
    kill -TERM "$server_pid"
    wait "$server_pid" || { echo "soak server: drain exited nonzero" >&2; exit 1; }
    grep -q 'drained cleanly' "$work/server.log" || {
        echo "soak server: no clean-drain line" >&2; exit 1; }

    echo "soak server: all gates passed ($n sessions survived SIGKILL byte-identically)"
    exit 0
fi

if [ "${1:-}" = migrate ]; then
    shift
    n=${1:-30}
    a_pid=""; b_pid=""
    work=$(mktemp -d)
    trap 'kill -9 "$a_pid" "$b_pid" 2>/dev/null; rm -rf "$work"' EXIT
    go build -o "$work/atsimd" ./cmd/atsimd
    go build -o "$work/atsimload" ./cmd/atsimload

    # start_node NAME ADDR CHAOS_POINT: (re)start one instance over its
    # own data dir. ADDR ":0" picks a port on first boot; restarts pass
    # the parsed address back in so the peer URL stays stable across
    # kills. Sets $addr/$url/$pid.
    start_node() {
        name=$1; naddr=$2; point=$3
        chaos_flag=""
        [ -n "$point" ] && chaos_flag="-chaos-migrate-kill=$point"
        "$work/atsimd" -addr "$naddr" -data "$work/data-$name" \
            -peer-allow '*' -max-live 32 -drain-timeout 30s \
            -migrate-timeout 5s $chaos_flag \
            > "$work/$name.log" 2>&1 &
        pid=$!
        addr=""
        i=0
        while [ $i -lt 100 ]; do
            addr=$(sed -n 's/^atsimd: listening on //p' "$work/$name.log" | head -1)
            [ -n "$addr" ] && break
            kill -0 "$pid" 2>/dev/null || {
                echo "soak migrate: atsimd ($name) died on startup:" >&2
                cat "$work/$name.log" >&2; exit 1; }
            i=$((i+1)); sleep 0.1
        done
        [ -n "$addr" ] || { echo "soak migrate: no listen line ($name)" >&2; exit 1; }
        url="http://$addr"
        "$work/atsimload" -server "$url" -timeout 30s wait
    }
    start_a() { start_node a "${a_addr:-127.0.0.1:0}" "${1:-}"; a_pid=$pid; a_addr=$addr; a_url=$url; }
    start_b() { start_node b "${b_addr:-127.0.0.1:0}" "${1:-}"; b_pid=$pid; b_addr=$addr; b_url=$url; }

    # verify_round STATEFILE: drive the state file's sessions onto B and
    # assert the full handoff contract (fence 410+Location, one-hop
    # redirect, gap-free obs). Retries while boot-time intent resolution
    # is still settling (the server answers 409 meanwhile).
    verify_round() {
        i=0
        until "$work/atsimload" -server "$a_url" -timeout 20s \
            -state "$1" -target "$b_url" migrate; do
            i=$((i+1))
            [ $i -ge 30 ] && { echo "soak migrate: $1 never resolved" >&2; return 1; }
            sleep 1
        done
    }

    # finish_round STATEFILE TAG: run the sessions (now on B) to
    # completion and cmp against uninterrupted control twins.
    finish_round() {
        "$work/atsimload" -server "$b_url" -state "$1" -out "$work/$2-finish.txt" finish
        "$work/atsimload" -server "$b_url" -state "$1" -out "$work/$2-control.txt" control
        cmp "$work/$2-finish.txt" "$work/$2-control.txt" || {
            echo "soak migrate: fingerprints diverged ($2)" >&2; exit 1; }
    }

    echo "== soak migrate: start the pair =="
    start_a
    start_b

    round=0
    for spec in \
        a:source.prepared a:source.intent a:source.push \
        a:source.acked a:source.committed \
        b:target.received b:target.snapshot b:target.manifest; do
        side=${spec%%:*}; point=${spec#*:}
        round=$((round+1))
        echo "== soak migrate: round $round: SIGKILL $side at $point =="
        st="$work/round-$round.json"
        "$work/atsimload" -server "$a_url" -n 1 -seed-base $((9000+round)) -state "$st" create
        "$work/atsimload" -server "$a_url" -quanta 2 -state "$st" step
        # Re-arm the doomed side with the chaos trigger.
        if [ "$side" = a ]; then
            kill -TERM "$a_pid"; wait "$a_pid" 2>/dev/null || true
            start_a "$point"
        else
            kill -TERM "$b_pid"; wait "$b_pid" 2>/dev/null || true
            start_b "$point"
        fi
        # The migration must NOT succeed cleanly — the chaos gate kills
        # one side mid-protocol.
        "$work/atsimload" -server "$a_url" -timeout 10s \
            -state "$st" -target "$b_url" migrate > /dev/null 2>&1 && {
            echo "soak migrate: round $round survived a $point kill?" >&2; exit 1; }
        # The killed side is gone (SIGKILL by its own chaos hook);
        # restart it clean and let intent recovery settle the handoff.
        if [ "$side" = a ]; then
            wait "$a_pid" 2>/dev/null || true
            start_a
        else
            wait "$b_pid" 2>/dev/null || true
            start_b
        fi
        verify_round "$st"
        finish_round "$st" "round-$round"
    done

    for victim in a b; do
        round=$((round+1))
        echo "== soak migrate: round $round: random mid-transfer SIGKILL of $victim =="
        st="$work/round-$round.json"
        "$work/atsimload" -server "$a_url" -n 4 -c 4 -seed-base $((9000+round*10)) -state "$st" create
        "$work/atsimload" -server "$a_url" -quanta 2 -c 4 -state "$st" step
        "$work/atsimload" -server "$a_url" -timeout 20s -c 4 \
            -state "$st" -target "$b_url" migrate > /dev/null 2>&1 &
        mig_pid=$!
        sleep "0.$((round % 7))"
        if [ "$victim" = a ]; then
            kill -9 "$a_pid"; wait "$a_pid" 2>/dev/null || true
            wait "$mig_pid" 2>/dev/null || true
            start_a
        else
            kill -9 "$b_pid"; wait "$b_pid" 2>/dev/null || true
            wait "$mig_pid" 2>/dev/null || true
            start_b
        fi
        verify_round "$st"
        finish_round "$st" "round-$round"
    done

    echo "== soak migrate: $n sessions under live step traffic =="
    "$work/atsimload" -server "$a_url" -n "$n" -c 8 -state "$work/bulk.json" create
    "$work/atsimload" -server "$a_url" -quanta 2 -c 8 -state "$work/bulk.json" step
    "$work/atsimload" -server "$a_url" -c 8 -quanta 1 -timeout 60s \
        -state "$work/bulk.json" -best-effort step > /dev/null 2>&1 &
    traffic_pid=$!
    verify_round "$work/bulk.json"
    wait "$traffic_pid" 2>/dev/null || true
    finish_round "$work/bulk.json" bulk

    echo "== soak migrate: metrics =="
    "$work/atsimload" -server "$a_url" -expect \
        "atsimd_migrations_started_total,atsimd_migrations_committed_total,atsimd_migration_seconds" \
        metrics
    "$work/atsimload" -server "$b_url" -expect \
        "atsimd_migrations_in_total,atsimd_migrations_fenced_total" \
        metrics

    echo "== soak migrate: both drain cleanly =="
    kill -TERM "$a_pid" "$b_pid"
    wait "$a_pid" || { echo "soak migrate: source drain exited nonzero" >&2; exit 1; }
    wait "$b_pid" || { echo "soak migrate: target drain exited nonzero" >&2; exit 1; }

    echo "soak migrate: all gates passed (kill-anywhere handoffs stayed exactly-once and byte-identical)"
    exit 0
fi

bin=$(mktemp)
trap 'rm -f "$bin"' EXIT
go build -o "$bin" ./cmd/soak

if [ $# -gt 0 ]; then
    exec "$bin" "$@"
fi

echo "== soak: tasks/LFF, 4 CPUs, clean counters =="
"$bin" -app tasks -policy LFF -cpus 4 -scale 0.3 -kills 5 -every 10000

echo "== soak: merge/LFF, 4 CPUs, all counter faults =="
"$bin" -app merge -policy LFF -cpus 4 -scale 0.2 -faults all -kills 3 -every 8000

echo "soak: all differentials byte-identical"
