#!/bin/sh
# Run the table/figure benchmarks and record ns/op as JSON.
#
# Usage: scripts/bench.sh [extra go-test args...]
#
# Writes BENCH_<yyyy-mm-dd>.json at the repo root: a flat object mapping
# benchmark name (trailing -N GOMAXPROCS suffix stripped) to ns/op. Runs
# each benchmark -count=3 and keeps the median so a single noisy run on
# a shared host cannot skew the committed numbers.
set -e
cd "$(dirname "$0")/.."

out="BENCH_$(date +%F).json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkTable|BenchmarkFig|BenchmarkAblation|BenchmarkObs|BenchmarkCheckpoint' \
	-count=3 "$@" . | tee "$raw"

awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (!(name in idx)) { idx[name] = ++n; names[n] = name }
	vals[name] = vals[name] " " $3
}
END {
	printf "{\n"
	for (i = 1; i <= n; i++) {
		name = names[i]
		cnt = split(vals[name], v, " ")
		# insertion-sort the handful of samples, take the median
		for (a = 2; a <= cnt; a++) {
			x = v[a]
			for (b = a - 1; b >= 1 && v[b] + 0 > x + 0; b--) v[b+1] = v[b]
			v[b+1] = x
		}
		med = v[int((cnt + 1) / 2)]
		printf "  \"%s\": %d%s\n", name, med, (i < n ? "," : "")
	}
	printf "}\n"
}' "$raw" > "$out"

echo "wrote $out"
