#!/bin/sh
# Run the table/figure benchmarks and record ns/op as JSON.
#
# Usage: scripts/bench.sh [-cpuprofile FILE] [-memprofile FILE]
#                         [-ncpu "8 64 ..."] [extra go-test args...]
#
# Writes BENCH_<yyyy-mm-dd>.json at the repo root: a flat object mapping
# benchmark name (trailing -N GOMAXPROCS suffix stripped) to ns/op. Runs
# each benchmark -count=3 and keeps the median so a single noisy run on
# a shared host cannot skew the committed numbers.
#
# -cpuprofile/-memprofile pass straight through to go test; inspect the
# result with
#
#	go tool pprof -top FILE            # hot functions
#	go tool pprof -list SweepDM FILE   # line-level cost of one function
#
# (docs/PERFORMANCE.md walks through the full profiling workflow.)
#
# -ncpu runs the Figure 9 grid once per listed CPU count via
# BenchmarkFig9CPUSweep, recording BenchmarkFig9CPUSweep/<n>cpu entries
# in the JSON — the scaling curve behind docs/PERFORMANCE.md.
set -e
cd "$(dirname "$0")/.."

cpuprofile=
memprofile=
ncpu=
while [ $# -gt 0 ]; do
	case $1 in
	-cpuprofile) cpuprofile=$2; shift 2 ;;
	-memprofile) memprofile=$2; shift 2 ;;
	-ncpu) ncpu=$2; shift 2 ;;
	*) break ;;
	esac
done

[ -n "$memprofile" ] && set -- -memprofile "$memprofile" "$@"
[ -n "$cpuprofile" ] && set -- -cpuprofile "$cpuprofile" "$@"

out="BENCH_$(date +%F).json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

BENCH_NCPU="$ncpu" go test -run '^$' \
	-bench 'BenchmarkTable|BenchmarkFig|BenchmarkAblation|BenchmarkObs|BenchmarkCheckpoint' \
	-count=3 "$@" . | tee "$raw"

awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (!(name in idx)) { idx[name] = ++n; names[n] = name }
	vals[name] = vals[name] " " $3
}
END {
	printf "{\n"
	for (i = 1; i <= n; i++) {
		name = names[i]
		cnt = split(vals[name], v, " ")
		# insertion-sort the handful of samples, take the median
		for (a = 2; a <= cnt; a++) {
			x = v[a]
			for (b = a - 1; b >= 1 && v[b] + 0 > x + 0; b--) v[b+1] = v[b]
			v[b+1] = x
		}
		med = v[int((cnt + 1) / 2)]
		printf "  \"%s\": %d%s\n", name, med, (i < n ? "," : "")
	}
	printf "}\n"
}' "$raw" > "$out"

echo "wrote $out"
