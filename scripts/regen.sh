#!/bin/sh
# Regenerate every artifact of the reproduction:
#   - results/full_run.txt      every table/figure at full scale
#   - results/validate.txt      the paper-claim conformance suite
#   - results/csv/              plottable series for the figures
#   - test and benchmark logs
set -e
cd "$(dirname "$0")/.."
mkdir -p results results/csv results/svg
go build ./...
scripts/ci.sh
go test ./... | tee results/test_run.txt
go run ./cmd/repro -csv results/csv -svg results/svg all | tee results/full_run.txt
go run ./cmd/repro validate | tee results/validate.txt
go run ./cmd/repro sources | tee results/sources.txt
go run ./cmd/repro tlb | tee results/tlb.txt
go run ./cmd/repro coarse | tee results/coarse.txt
go run ./cmd/repro compare | tee results/compare.txt
go run ./cmd/repro -scale 0.5 scaling | tee results/scaling.txt
go test -bench=. -benchmem . | tee results/bench_run.txt
