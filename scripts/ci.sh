#!/bin/sh
# Static checks, the race-detector pass over the whole module, and a
# fuzz smoke of the untrusted-input surfaces. -short trims the
# experiments package to its fast tests (the full golden suite under
# the race detector, ~10x, would exceed go test's timeout while adding
# no concurrency coverage); everything else runs complete. The fuzz
# targets get a few seconds each on top of their checked-in corpora:
# enough to catch a decoder or sanitizer regression, bounded enough
# for CI. Run before committing; regen.sh runs it as its first step.
set -e
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go test -race -short -timeout 30m ./...
go test -fuzz FuzzLoadRecording -fuzztime 10s -run '^$' ./internal/trace
go test -fuzz FuzzSanitizeStream -fuzztime 10s -run '^$' ./internal/rt
