#!/bin/sh
# Static checks, the race-detector pass over the whole module, and a
# fuzz smoke of the untrusted-input surfaces. -short trims the
# experiments package to its fast tests (the full golden suite under
# the race detector, ~10x, would exceed go test's timeout while adding
# no concurrency coverage); everything else runs complete. The fuzz
# targets get a few seconds each on top of their checked-in corpora:
# enough to catch a decoder or sanitizer regression, bounded enough
# for CI. Run before committing; regen.sh runs it as its first step.
set -e
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go test -race -short -timeout 30m ./...
go test -fuzz FuzzLoadRecording -fuzztime 10s -run '^$' ./internal/trace
go test -fuzz FuzzSanitizeStream -fuzztime 10s -run '^$' ./internal/rt
go test -fuzz FuzzChromeTrace -fuzztime 10s -run '^$' ./internal/obs
go test -fuzz FuzzLoadSnapshot -fuzztime 10s -run '^$' ./internal/snapshot

# Telemetry gates: exported traces must be byte-identical regardless of
# worker count, and full tracing must not move a single golden counter.
# Both already ran under -race above; re-running them plainly makes the
# gate explicit and keeps it alive if the suites above are trimmed.
go test -run 'TestExportsDeterministicAcrossWorkers' ./internal/experiments
go test -run 'TestGoldenUnchangedByObservation' .

# Live-stream determinism gates: the server's /obs stream must be
# byte-identical to the standalone engine's post-hoc export at any
# worker count, a follower must accumulate exactly the batch bytes,
# and evict/resume cycles must not perturb the sequence.
go test -run 'TestObsStreamMatchesEngineExport|TestObsFollowEqualsBatch|TestObsStreamSurvivesEviction' ./internal/server
go test -run 'TestStreamFollowEqualsBatch' ./internal/obs

# Cache-topology gates. The degenerate-equivalence differential (a
# shared hierarchy at one CPU must match the private direct-mapped
# machine access for access) and the shared-LLC report smoke: the
# co-runner-aware model tracking the simulator and the shared-aware
# policies beating FCFS under the shared cache. All ran under -race
# above; kept explicit for the same reason as the telemetry gates.
go test -run 'TestSharedDegenerates' ./internal/machine
go test -run 'TestSharedLLCAccuracy|TestSharedPoliciesBeatFCFS' ./internal/experiments

# Crash-safety gates. First the in-process differential (resume from
# any checkpoint reproduces the uninterrupted run bit for bit, with
# telemetry and under counter faults), then a real kill-resume pass:
# a checkpointing atsim run, a fresh -resume of its snapshot, and the
# two stdouts must match byte for byte.
go test -run 'TestKillResume|TestCheckpointCaptureIsPure' ./internal/rt
ckptdir=$(mktemp -d)
trap 'rm -rf "$ckptdir"' EXIT
go build -o "$ckptdir/atsim" ./cmd/atsim
"$ckptdir/atsim" -app tasks -cpus 2 -scale 0.2 -checkpoint-every 10000 \
    -checkpoint "$ckptdir/run.snap" > "$ckptdir/straight.txt"
"$ckptdir/atsim" -app tasks -cpus 2 -scale 0.2 -checkpoint-every 10000 \
    -checkpoint "$ckptdir/run.snap" -resume > "$ckptdir/resumed.txt"
cmp "$ckptdir/straight.txt" "$ckptdir/resumed.txt" || {
    echo "kill-resume differential: resumed run output diverged" >&2; exit 1; }

# Chaos soak smoke: one subprocess SIGKILL/resume cycle converging to
# the straight-run fingerprint (scripts/soak.sh runs the full matrix).
scripts/soak.sh -app tasks -policy LFF -cpus 2 -scale 0.2 -kills 2 -every 10000

# Service crash-safety gate: atsimd hosting 500 sessions, SIGKILLed
# under live step traffic, restarted over the same data directory; a
# chaos session must fail in isolation, every admitted session must
# resume and fingerprint byte-identically to an uninterrupted control
# twin, and a load smoke must meet its SLO before a clean SIGTERM
# drain. See docs/SERVICE.md.
scripts/soak.sh server 500

# Migration chaos gate: two atsimd instances, a SIGKILL of source or
# target at every handoff phase boundary plus random mid-transfer
# kills, then a bulk migration under live step traffic. Every session
# must finish exactly once, byte-identical to its control twin, with
# 410+Location fencing and a gap-free /obs stream across the handoff.
# See the Migration section of docs/SERVICE.md.
scripts/soak.sh migrate 30

# Overhead gate (opt-in: BENCH_GATE=1): re-run the benchmark sweep and
# hard-fail if anything — most importantly BenchmarkObsOff, the
# telemetry disabled path — regressed more than 2% against the newest
# committed baseline. The sweep includes the scaling probe
# BenchmarkFig9_64CPU, so hot-path regressions that only show at high
# CPU counts fail the gate too; benchdiff never fails on benchmarks
# present in only one file, so adding probes does not break old
# baselines. Opt-in because the sweep takes minutes and the committed
# numbers are host-specific; run it on the baseline host before
# cutting a release.
if [ "${BENCH_GATE:-}" = 1 ]; then
    baseline=$(git ls-files 'BENCH_*.json' | sort | tail -1)
    [ -n "$baseline" ] || { echo "BENCH_GATE=1 but no committed BENCH_*.json" >&2; exit 1; }
    git show "HEAD:$baseline" > /tmp/bench_baseline.$$.json
    scripts/bench.sh
    scripts/benchdiff.sh /tmp/bench_baseline.$$.json "BENCH_$(date +%F).json" 2
    rm -f /tmp/bench_baseline.$$.json
fi
