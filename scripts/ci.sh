#!/bin/sh
# Static checks plus the race-detector pass over the code with real
# concurrency: the parallel experiment driver, the scheduler it fans
# out, and the experiment cells that ride on it. The experiments
# package is filtered to the parallel-determinism tests — the full
# golden suite under the race detector (~10×) would exceed go test's
# timeout while adding no concurrency coverage, since everything else
# in it is sequential. Run before committing; regen.sh runs it as its
# first step.
set -e
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go test -race ./internal/parallel ./internal/sched
go test -race ./internal/experiments -run 'ParallelDeterminism'
